// Package harness builds, runs and measures the experiments of the
// paper's evaluation section. Each figure/table has a driver in
// figures.go; this file contains the shared machinery: preparing a
// simulated machine + device + preloaded tree, closed- and open-loop
// drivers for PA-Tree, and multi-threaded closed-loop drivers for the
// synchronous baselines.
package harness

import (
	"fmt"
	"time"

	"github.com/patree/patree/internal/baseline/blink"
	"github.com/patree/patree/internal/baseline/lcb"
	"github.com/patree/patree/internal/baseline/syncbtree"
	"github.com/patree/patree/internal/core"
	"github.com/patree/patree/internal/lsm"
	"github.com/patree/patree/internal/metrics"
	"github.com/patree/patree/internal/nvme"
	"github.com/patree/patree/internal/sim"
	"github.com/patree/patree/internal/simos"
	"github.com/patree/patree/internal/workload"
)

// CPUGHz converts CPU time to cycles for Table II (the paper's testbed
// runs at 2.3 GHz).
const CPUGHz = 2.3

// Scale bounds an experiment's size so the same drivers serve both the
// full `cmd/paexp` runs and the reduced `go test -bench` versions.
type Scale struct {
	// PreloadKeys is the initial tree size.
	PreloadKeys int
	// Warmup and Measure are the virtual-time phases; stats cover only
	// the measurement window.
	Warmup  time.Duration
	Measure time.Duration
	// Threads are the baseline thread counts swept in Figures 7/8.
	Threads []int
	// Concurrency is PA-Tree's closed-loop outstanding-operation count
	// (the paper's application threads all blocked on the index).
	Concurrency int
	// Seed drives everything.
	Seed uint64
}

// FullScale approximates the paper's runs (minutes of host time).
func FullScale() Scale {
	return Scale{
		PreloadKeys: 1 << 21,
		Warmup:      150 * time.Millisecond,
		Measure:     700 * time.Millisecond,
		Threads:     []int{1, 2, 4, 8, 16, 32, 64, 128},
		Concurrency: 64,
		Seed:        42,
	}
}

// BenchScale is small enough for `go test -bench` (seconds per figure).
func BenchScale() Scale {
	return Scale{
		PreloadKeys: 200_000,
		Warmup:      50 * time.Millisecond,
		Measure:     200 * time.Millisecond,
		Threads:     []int{1, 8, 32, 128},
		Concurrency: 64,
		Seed:        42,
	}
}

// RunStats is the measurement record every driver produces.
type RunStats struct {
	Label       string
	Throughput  float64 // index ops/s over the measurement window
	MeanLatency time.Duration
	P99Latency  time.Duration
	CPU         float64 // average busy cores (0..8)
	Breakdown   []float64
	CtxSwitches uint64
	IOPS        float64
	Outstanding float64 // avg outstanding I/Os
	CyclesPerOp float64 // thousands of cycles
	Ops         uint64
	LatchWaits  uint64
	Probes      uint64
	// ReaderServed / ReaderFallback count point lookups answered by (or
	// declined by) the optimistic concurrent-read path during the
	// measurement window. Only the read-heavy driver populates them; both
	// stay 0 for pipeline-only runs.
	ReaderServed   uint64
	ReaderFallback uint64
}

// machine bundles one simulated testbed.
type machine struct {
	eng *sim.Engine
	os  *simos.Sched
	dev *nvme.SimDevice
}

func newMachine(seed uint64, devCfg nvme.SimConfig) *machine {
	eng := sim.NewEngine()
	devCfg.Seed = seed ^ 0xdead
	return &machine{
		eng: eng,
		os:  simos.New(eng, simos.Config{}),
		dev: nvme.NewSimDevice(eng, devCfg),
	}
}

// resetAt schedules the measurement-window start: zero every statistic at
// the (absolute) warmup boundary.
func (m *machine) resetAt(at sim.Time, extra func()) {
	m.eng.At(at, func() {
		m.os.ResetStats()
		m.dev.ResetStats()
		if extra != nil {
			extra()
		}
	})
}

// finish computes the machine-level stats over the measurement window.
// idleSpin is busy-wait time to exclude from the cycle attribution
// (Figure 9 / Table II count attributed work, not wait loops).
func (m *machine) finish(rs *RunStats, measure time.Duration, cpus []*metrics.CPUAccount, ops uint64, lat *metrics.Histogram, idleSpin time.Duration) {
	secs := measure.Seconds()
	rs.Ops = ops
	rs.Throughput = float64(ops) / secs
	if lat != nil && lat.Count() > 0 {
		rs.MeanLatency = lat.Mean()
		rs.P99Latency = lat.Percentile(99)
	}
	rs.CPU = m.os.CPUConsumption()
	rs.CtxSwitches = m.os.ContextSwitches()
	dst := m.dev.Stats()
	rs.IOPS = float64(dst.CompletedReads+dst.CompletedWrites) / secs
	rs.Outstanding = dst.AvgOutstanding
	var total metrics.CPUAccount
	for _, a := range cpus {
		total.Merge(a)
	}
	if idleSpin > 0 {
		other := total.Get(metrics.CatOther) - idleSpin
		if other < 0 {
			other = 0
		}
		adj := metrics.CPUAccount{}
		for _, c := range metrics.Categories() {
			if c == metrics.CatOther {
				adj.Charge(c, other)
			} else {
				adj.Charge(c, total.Get(c))
			}
		}
		total = adj
	}
	rs.Breakdown = total.Fractions()
	if ops > 0 {
		rs.CyclesPerOp = total.Total().Seconds() * CPUGHz * 1e9 / float64(ops) / 1e3
	}
}

// PAConfig configures a PA-Tree run.
type PAConfig struct {
	Scale   Scale
	Tree    core.Config
	Gen     workload.Generator
	Device  nvme.SimConfig
	// ArrivalRate > 0 switches to an open-loop driver with Poisson
	// arrivals at that many ops/s (Figure 13); otherwise the driver is
	// closed-loop with Scale.Concurrency outstanding operations.
	ArrivalRate float64
	// SyncEvery issues a Sync() after this many updates (weak
	// persistence's group commit; 0 disables).
	SyncEvery int
}

// toOp converts a workload op into a PA-Tree operation.
func toOp(w workload.Op, done func(*core.Op)) *core.Op {
	switch w.Kind {
	case workload.OpSearch:
		return core.NewSearch(w.Key, done)
	case workload.OpInsert:
		return core.NewInsert(w.Key, w.Value, done)
	case workload.OpUpdate:
		return core.NewInsert(w.Key, w.Value, done) // paper updates overwrite
	case workload.OpDelete:
		return core.NewDelete(w.Key, done)
	case workload.OpRange:
		return core.NewRange(w.Key, w.EndKey, w.Limit, done)
	default:
		panic("harness: unknown op kind")
	}
}

// RunPATree executes one PA-Tree configuration and reports its stats.
func RunPATree(cfg PAConfig) RunStats {
	m := newMachine(cfg.Scale.Seed, cfg.Device)
	meta, err := core.BulkLoad(m.dev, cfg.Gen.Preload(), 0.7)
	if err != nil {
		panic(err)
	}
	var tree *core.Tree
	worker := m.os.Spawn("patree", func(*simos.Thread) { tree.Run() })
	tree, err = core.New(m.dev, cfg.Tree, core.SimEnv{T: worker}, meta)
	if err != nil {
		panic(err)
	}
	var pollerCPU *metrics.CPUAccount
	if cfg.Tree.Poller != core.PollerInline {
		pol := m.os.Spawn("poller", func(th *simos.Thread) {
			var p = tree.PollerPolicy()
			tree.RunPoller(core.SimEnv{T: th}, p)
		})
		pollerCPU = &pol.CPU
	}

	measuredOps := uint64(0)
	inWindow := false
	stopping := false
	updates := 0
	var admit func()
	onDone := func(*core.Op) {
		if inWindow {
			measuredOps++
		}
		if cfg.ArrivalRate <= 0 && !stopping {
			admit()
		}
	}
	admit = func() {
		w := cfg.Gen.Next()
		if w.Kind != workload.OpSearch && w.Kind != workload.OpRange {
			updates++
			if cfg.SyncEvery > 0 && updates%cfg.SyncEvery == 0 {
				tree.Admit(core.NewSync(nil))
			}
		}
		tree.Admit(toOp(w, onDone))
	}
	base := m.eng.Now()
	if cfg.ArrivalRate > 0 {
		rng := sim.NewRNG(cfg.Scale.Seed ^ 0xa11)
		mean := time.Duration(float64(time.Second) / cfg.ArrivalRate)
		var arrive func()
		arrive = func() {
			admit()
			m.eng.After(rng.Exp(mean), arrive)
		}
		m.eng.After(rng.Exp(mean), arrive)
	} else {
		conc := cfg.Scale.Concurrency
		if conc <= 0 {
			conc = 64
		}
		m.eng.After(0, func() {
			for i := 0; i < conc; i++ {
				admit()
			}
		})
	}
	m.resetAt(base.Add(cfg.Scale.Warmup), func() {
		tree.ResetStats()
		worker.CPU.Reset()
		if pollerCPU != nil {
			pollerCPU.Reset()
		}
		inWindow = true
	})
	m.eng.RunUntil(base.Add(cfg.Scale.Warmup + cfg.Scale.Measure))

	st := tree.StatsSnapshot()
	rs := RunStats{Label: "PA-Tree"}
	// The tree's own live accounting (the same account Metrics exposes):
	// on SimEnv this is the worker thread's virtual-CPU ledger.
	cpus := []*metrics.CPUAccount{tree.CPUSnapshot()}
	if pollerCPU != nil {
		cpus = append(cpus, pollerCPU)
	}
	m.finish(&rs, cfg.Scale.Measure, cpus, measuredOps, st.Latency, st.IdleSpinTime)
	rs.LatchWaits = tree.LatchWaits()
	rs.Probes = st.Probes
	stopping = true
	tree.Stop()
	m.eng.RunFor(2 * time.Second)
	return rs
}

// ShardedPAConfig configures a sharded PA-Tree run: N independent
// working threads over disjoint partitions of ONE simulated device, so
// the controller-interference accounting stays shared across shards.
type ShardedPAConfig struct {
	Scale  Scale
	Shards int
	// MkTree builds one shard's tree configuration. It is called once
	// per shard because sched.Policy instances are stateful — every
	// worker needs its own.
	MkTree func() core.Config
	Gen    workload.Generator
	Device nvme.SimConfig
	// SyncEvery issues a Sync on every shard after this many updates
	// (0 disables).
	SyncEvery int
}

// RunShardedPATree executes one sharded configuration and reports the
// merged stats. The keyspace is hash-partitioned by core.ShardOf: the
// preload is split among the shards' partitions (each bulk-loaded
// independently), and the closed-loop driver keeps Scale.Concurrency
// operations outstanding PER SHARD, routing each to its key's owner.
// Shards <= 1 places the single tree directly on the device — exactly
// the RunPATree layout, so same-seed runs produce identical traces.
func RunShardedPATree(cfg ShardedPAConfig) RunStats {
	n := cfg.Shards
	if n < 1 {
		n = 1
	}
	m := newMachine(cfg.Scale.Seed, cfg.Device)

	// Split the preload by owning shard; each slice stays sorted because
	// splitting preserves order.
	preload := cfg.Gen.Preload()
	parts := make([][]core.KV, n)
	for _, kv := range preload {
		si := core.ShardOf(kv.Key, n)
		parts[si] = append(parts[si], kv)
	}

	trees := make([]*core.Tree, n)
	workers := make([]*simos.Thread, n)
	per := m.dev.NumBlocks() / uint64(n)
	for i := 0; i < n; i++ {
		var dev nvme.Device = m.dev
		if n > 1 {
			p, err := nvme.NewPartition(m.dev, uint64(i)*per, per)
			if err != nil {
				panic(err)
			}
			dev = p
		}
		meta, err := core.BulkLoad(dev.(core.ImageWriter), parts[i], 0.7)
		if err != nil {
			panic(err)
		}
		i := i
		workers[i] = m.os.Spawn(fmt.Sprintf("patree-shard%d", i), func(*simos.Thread) { trees[i].Run() })
		trees[i], err = core.New(dev, cfg.MkTree(), core.SimEnv{T: workers[i]}, meta)
		if err != nil {
			panic(err)
		}
	}

	measuredOps := uint64(0)
	inWindow := false
	stopping := false
	updates := 0
	var admit func()
	onDone := func(*core.Op) {
		if inWindow {
			measuredOps++
		}
		if !stopping {
			admit()
		}
	}
	admit = func() {
		w := cfg.Gen.Next()
		if w.Kind != workload.OpSearch && w.Kind != workload.OpRange {
			updates++
			if cfg.SyncEvery > 0 && updates%cfg.SyncEvery == 0 {
				for _, t := range trees {
					t.Admit(core.NewSync(nil))
				}
			}
		}
		// Range ops stay on the low key's shard: the sharded harness
		// measures throughput scaling, and the swept workloads are
		// point-op mixes (the embedder API does the real scatter-gather).
		trees[core.ShardOf(w.Key, n)].Admit(toOp(w, onDone))
	}
	conc := cfg.Scale.Concurrency
	if conc <= 0 {
		conc = 64
	}
	base := m.eng.Now()
	m.eng.After(0, func() {
		for i := 0; i < conc*n; i++ {
			admit()
		}
	})
	m.resetAt(base.Add(cfg.Scale.Warmup), func() {
		for i, t := range trees {
			t.ResetStats()
			workers[i].CPU.Reset()
		}
		inWindow = true
	})
	m.eng.RunUntil(base.Add(cfg.Scale.Warmup + cfg.Scale.Measure))

	rs := RunStats{Label: fmt.Sprintf("PA-Tree x%d", n)}
	lat := metrics.NewHistogram()
	var cpus []*metrics.CPUAccount
	var idleSpin time.Duration
	for _, t := range trees {
		st := t.StatsSnapshot()
		lat.Merge(st.Latency)
		idleSpin += st.IdleSpinTime
		cpus = append(cpus, t.CPUSnapshot())
		rs.LatchWaits += t.LatchWaits()
		rs.Probes += st.Probes
	}
	m.finish(&rs, cfg.Scale.Measure, cpus, measuredOps, lat, idleSpin)
	stopping = true
	for _, t := range trees {
		t.Stop()
	}
	m.eng.RunFor(2 * time.Second)
	return rs
}

// SyncKind selects a synchronous baseline engine.
type SyncKind int

// Baseline engines.
const (
	KindShared SyncKind = iota
	KindDedicated
	KindBlink
	KindLCB
	KindLSM
)

// String names the engine as in the paper.
func (k SyncKind) String() string {
	switch k {
	case KindShared:
		return "shared"
	case KindDedicated:
		return "dedicated"
	case KindBlink:
		return "Blink-Tree"
	case KindLCB:
		return "LCB-Tree"
	case KindLSM:
		return "LSM (LevelDB)"
	default:
		return fmt.Sprintf("SyncKind(%d)", int(k))
	}
}

// SyncConfig configures a baseline run.
type SyncConfig struct {
	Scale       Scale
	Kind        SyncKind
	Threads     int
	Gen         workload.Generator
	Device      nvme.SimConfig
	Persistence syncbtree.Persistence
	CachePages  int
	SyncEvery   int
}

// syncStore adapts the baseline engines to one op interface.
type syncStore interface {
	do(th *simos.Thread, op workload.Op) error
	sync(th *simos.Thread) error
}

type btreeStore struct{ t *syncbtree.Tree }

func (s btreeStore) do(th *simos.Thread, op workload.Op) error {
	var err error
	switch op.Kind {
	case workload.OpSearch:
		_, _, err = s.t.Search(th, op.Key)
	case workload.OpInsert, workload.OpUpdate:
		_, err = s.t.Insert(th, op.Key, op.Value)
	case workload.OpDelete:
		_, err = s.t.Delete(th, op.Key)
	case workload.OpRange:
		_, err = s.t.RangeScan(th, op.Key, op.EndKey, op.Limit)
	}
	return err
}
func (s btreeStore) sync(th *simos.Thread) error { return s.t.Sync(th) }

type blinkStore struct{ t *blink.Tree }

func (s blinkStore) do(th *simos.Thread, op workload.Op) error {
	var err error
	switch op.Kind {
	case workload.OpSearch:
		_, _, err = s.t.Search(th, op.Key)
	case workload.OpInsert, workload.OpUpdate:
		_, err = s.t.Insert(th, op.Key, op.Value)
	case workload.OpDelete:
		_, err = s.t.Delete(th, op.Key)
	case workload.OpRange:
		_, err = s.t.RangeScan(th, op.Key, op.EndKey, op.Limit)
	}
	return err
}
func (s blinkStore) sync(th *simos.Thread) error { return s.t.Sync(th) }

type lcbStore struct{ t *lcb.Tree }

func (s lcbStore) do(th *simos.Thread, op workload.Op) error {
	var err error
	switch op.Kind {
	case workload.OpSearch:
		_, _, err = s.t.Search(th, op.Key)
	case workload.OpInsert, workload.OpUpdate:
		_, err = s.t.Insert(th, op.Key, op.Value)
	case workload.OpDelete:
		_, err = s.t.Delete(th, op.Key)
	case workload.OpRange:
		_, err = s.t.RangeScan(th, op.Key, op.EndKey, op.Limit)
	}
	return err
}
func (s lcbStore) sync(th *simos.Thread) error { return s.t.Sync(th) }

type lsmStore struct{ t *lsm.Tree }

func (s lsmStore) do(th *simos.Thread, op workload.Op) error {
	var err error
	switch op.Kind {
	case workload.OpSearch:
		_, _, err = s.t.Get(th, op.Key)
	case workload.OpInsert, workload.OpUpdate:
		err = s.t.Put(th, op.Key, op.Value)
	case workload.OpDelete:
		err = s.t.Delete(th, op.Key)
	case workload.OpRange:
		_, err = s.t.RangeScan(th, op.Key, op.EndKey, op.Limit)
	}
	return err
}
func (s lsmStore) sync(th *simos.Thread) error { return s.t.Sync(th) }

// RunSync executes one baseline configuration with N worker threads in a
// closed loop and reports its stats.
func RunSync(cfg SyncConfig) RunStats {
	m := newMachine(cfg.Scale.Seed, cfg.Device)
	preload := cfg.Gen.Preload()

	var io syncbtree.IO
	var shared *syncbtree.Shared
	if cfg.Kind == KindShared {
		shared = syncbtree.NewShared(m.dev, m.os)
		io = shared
	} else {
		io = syncbtree.NewDedicated(m.dev, m.os)
	}

	var store syncStore
	treeCfg := syncbtree.Config{Persistence: cfg.Persistence, CachePages: cfg.CachePages}
	switch cfg.Kind {
	case KindShared, KindDedicated:
		meta, err := core.BulkLoad(m.dev, preload, 0.7)
		if err != nil {
			panic(err)
		}
		store = btreeStore{t: syncbtree.NewTree(m.os, io, treeCfg, meta)}
	case KindBlink:
		// Blink uses its own node format: load through its insert path
		// (buffered, then synced) before the timed run.
		var bt *blink.Tree
		m.os.Spawn("loader", func(th *simos.Thread) {
			t2, err := blink.Format(th, m.os, io, blink.Config{
				Persistence: syncbtree.Weak, CachePages: 1 << 20})
			if err != nil {
				panic(err)
			}
			for _, kv := range preload {
				if _, err := t2.Insert(th, kv.Key, kv.Value); err != nil {
					panic(err)
				}
			}
			if err := t2.Sync(th); err != nil {
				panic(err)
			}
			bt = t2
		})
		m.eng.Run() // drive the loader to completion
		bt.SetPersistence(cfg.Persistence, cfg.CachePages)
		store = blinkStore{t: bt}
	case KindLCB:
		meta, err := core.BulkLoad(m.dev, preload, 0.7)
		if err != nil {
			panic(err)
		}
		store = lcbStore{t: lcb.New(m.os, io, m.dev, lcb.Config{
			Persistence: cfg.Persistence, CachePages: cfg.CachePages}, meta)}
	case KindLSM:
		tr := lsm.New(m.os, io, m.dev, lsm.Config{
			Persistence: cfg.Persistence, CachePages: cfg.CachePages, Seed: cfg.Scale.Seed})
		// LSM cannot use the B+ tree bulk image; load through its write
		// path with weak persistence, then flip the mode.
		m.os.Spawn("loader", func(th *simos.Thread) {
			save := tr.SetPersistence(syncbtree.Weak)
			for _, kv := range preload {
				if err := tr.Put(th, kv.Key, kv.Value); err != nil {
					panic(err)
				}
			}
			tr.Sync(th)
			tr.SetPersistence(save)
		})
		m.eng.Run()
		store = lsmStore{t: tr}
	}

	lat := metrics.NewHistogram()
	var measuredOps uint64
	inWindow := false
	updates := 0
	base := m.eng.Now()
	end := base.Add(cfg.Scale.Warmup + cfg.Scale.Measure)
	var cpus []*metrics.CPUAccount
	for w := 0; w < cfg.Threads; w++ {
		w := w
		th := m.os.Spawn(fmt.Sprintf("worker%d", w), func(th *simos.Thread) {
			for th.Now() < end {
				op := cfg.Gen.Next()
				isUpdate := op.Kind != workload.OpSearch && op.Kind != workload.OpRange
				start := th.Now()
				if err := store.do(th, op); err != nil {
					panic(fmt.Sprintf("baseline op failed: %v", err))
				}
				if inWindow {
					lat.Record(time.Duration(th.Now() - start))
					measuredOps++
				}
				if isUpdate {
					updates++
					if cfg.SyncEvery > 0 && updates%cfg.SyncEvery == 0 {
						store.sync(th)
					}
				}
			}
		})
		cpus = append(cpus, &th.CPU)
	}
	m.resetAt(base.Add(cfg.Scale.Warmup), func() {
		for _, a := range cpus {
			a.Reset()
		}
		inWindow = true
	})
	m.eng.RunUntil(end)
	rs := RunStats{Label: fmt.Sprintf("%s(%d)", cfg.Kind, cfg.Threads)}
	m.finish(&rs, cfg.Scale.Measure, cpus, measuredOps, lat, 0)
	if shared != nil {
		shared.Stop()
	}
	m.eng.RunFor(5 * time.Second) // let workers drain
	return rs
}
