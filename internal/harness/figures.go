package harness

import (
	"fmt"
	"time"

	"github.com/patree/patree/internal/baseline/syncbtree"
	"github.com/patree/patree/internal/core"
	"github.com/patree/patree/internal/metrics"
	"github.com/patree/patree/internal/nvme"
	"github.com/patree/patree/internal/probe"
	"github.com/patree/patree/internal/sched"
	"github.com/patree/patree/internal/sim"
	"github.com/patree/patree/internal/workload"
)

// Report is one regenerated table/figure.
type Report struct {
	ID    string
	Title string
	Table *metrics.Table
	// Notes records the expected shape from the paper for EXPERIMENTS.md.
	Notes string
}

func (r Report) String() string {
	return fmt.Sprintf("=== %s: %s ===\n%s", r.ID, r.Title, r.Table)
}

// defaultGen builds the paper's default workload (90% read / 10% update,
// zipf α=0.3).
func defaultGen(scale Scale, updatePct int, theta float64) *workload.YCSB {
	return workload.NewYCSB(workload.YCSBConfig{
		Keys:          uint64(scale.PreloadKeys),
		UpdatePercent: updatePct,
		Theta:         theta,
		Seed:          scale.Seed,
	})
}

// workloadAware builds the default Algorithm 2 policy.
func workloadAware(yield time.Duration) sched.Policy {
	m, err := probe.Default()
	if err != nil {
		panic(err)
	}
	return sched.NewWorkload(m, nil, yield)
}

// paTreeConfig is the standard PA-Tree configuration (§V: single working
// thread, workload-aware scheduling, prioritized execution, no buffer
// unless stated).
func paTreeConfig(bufferPages int, persistence core.Persistence) core.Config {
	return core.Config{
		Persistence: persistence,
		BufferPages: bufferPages,
		Policy:      workloadAware(20 * time.Microsecond),
		Prioritized: true,
	}
}

// ─── Figure 3: device characterization ──────────────────────────────────

// rawDeviceRun drives raw 512B I/O at a fixed queue depth / write rate /
// probe cycle and returns (IOPS, mean latency).
func rawDeviceRun(seed uint64, qd, writePct int, probeCycle, dur time.Duration) (float64, time.Duration) {
	eng := sim.NewEngine()
	dev := nvme.NewSimDevice(eng, nvme.SimConfig{Seed: seed})
	qp, err := dev.AllocQueuePair(qd + 8)
	if err != nil {
		panic(err)
	}
	rng := sim.NewRNG(seed ^ 0xf16)
	buf := make([]byte, dev.BlockSize())
	inflight, completed := 0, uint64(0)
	submit := func() {
		for inflight < qd {
			op := nvme.OpRead
			if rng.Intn(100) < writePct {
				op = nvme.OpWrite
			}
			if qp.Submit(&nvme.Command{Op: op, LBA: rng.Uint64n(65536), Blocks: 1, Buf: buf,
				Callback: func(nvme.Completion) { inflight--; completed++ }}) != nil {
				return
			}
			inflight++
		}
	}
	submit()
	var tick func()
	tick = func() {
		qp.Probe(0)
		submit()
		eng.After(probeCycle, tick)
	}
	eng.After(probeCycle, tick)
	eng.RunUntil(sim.Time(dur))
	st := dev.Stats()
	lat := metrics.NewHistogram()
	lat.Merge(st.ReadLatency)
	lat.Merge(st.WriteLatency)
	return float64(completed) / dur.Seconds(), lat.Mean()
}

// Fig3a reproduces IOPS vs queue depth × write rate.
func Fig3a(scale Scale) Report {
	tb := metrics.NewTable("queue depth", "write 0% (KIOPS)", "write 10% (KIOPS)", "write 50% (KIOPS)")
	for _, qd := range []int{1, 2, 4, 8, 16, 32, 64, 128, 256} {
		row := []any{qd}
		for _, wp := range []int{0, 10, 50} {
			iops, _ := rawDeviceRun(scale.Seed, qd, wp, 20*time.Microsecond, scale.Measure)
			row = append(row, iops/1e3)
		}
		tb.AddRow(row...)
	}
	return Report{ID: "fig3a", Title: "Device IOPS vs queue depth and write rate", Table: tb,
		Notes: "IOPS at QD>=32 should exceed QD1 by ~an order of magnitude; higher write rate lowers IOPS"}
}

// Fig3b reproduces access latency vs queue depth × write rate.
func Fig3b(scale Scale) Report {
	tb := metrics.NewTable("queue depth", "write 0% (us)", "write 10% (us)", "write 50% (us)")
	for _, qd := range []int{1, 2, 4, 8, 16, 32, 64, 128, 256} {
		row := []any{qd}
		for _, wp := range []int{0, 10, 50} {
			_, lat := rawDeviceRun(scale.Seed, qd, wp, 20*time.Microsecond, scale.Measure)
			row = append(row, float64(lat)/1e3)
		}
		tb.AddRow(row...)
	}
	return Report{ID: "fig3b", Title: "Device access latency vs queue depth and write rate", Table: tb,
		Notes: "latency grows with queue depth and write rate"}
}

// Fig3c reproduces IOPS and latency vs probe cycle.
func Fig3c(scale Scale) Report {
	tb := metrics.NewTable("probe cycle (us)", "KIOPS", "latency (us)")
	for _, cyc := range []time.Duration{1, 2, 5, 10, 20, 50, 100, 200} {
		iops, lat := rawDeviceRun(scale.Seed, 64, 10, cyc*time.Microsecond, scale.Measure)
		tb.AddRow(int(cyc), iops/1e3, float64(lat)/1e3)
	}
	return Report{ID: "fig3c", Title: "Device IOPS/latency vs probe cycle (QD 64, 10% writes)", Table: tb,
		Notes: "over-frequent probing (~1us) collapses IOPS; rare probing (>100us) inflates latency and lowers IOPS"}
}

// ─── Figures 7/8 + Tables I/II + Figure 9 ───────────────────────────────

// SchemeRows runs PA-Tree plus the shared/dedicated baselines across
// thread counts and workloads; shared by Fig7 (throughput), Fig8
// (latency), Table I, Table II and Fig9.
type SchemeRows struct {
	Workload string
	PA       RunStats
	Shared   map[int]RunStats
	Dedic    map[int]RunStats
}

// RunSchemes executes the §V-A comparison for the given workloads.
func RunSchemes(scale Scale, updatePcts []int) []SchemeRows {
	var out []SchemeRows
	for _, up := range updatePcts {
		rows := SchemeRows{Shared: map[int]RunStats{}, Dedic: map[int]RunStats{}}
		gen := defaultGen(scale, up, 0.3)
		rows.Workload = gen.Name()
		rows.PA = RunPATree(PAConfig{Scale: scale, Tree: paTreeConfig(0, core.StrongPersistence), Gen: gen})
		for _, n := range scale.Threads {
			rows.Shared[n] = RunSync(SyncConfig{Scale: scale, Kind: KindShared, Threads: n,
				Gen: defaultGen(scale, up, 0.3)})
			rows.Dedic[n] = RunSync(SyncConfig{Scale: scale, Kind: KindDedicated, Threads: n,
				Gen: defaultGen(scale, up, 0.3)})
		}
		out = append(out, rows)
	}
	return out
}

// Fig7 renders throughput vs threads.
func Fig7(rows []SchemeRows, scale Scale) Report {
	tb := metrics.NewTable("workload", "threads", "PA-Tree (Kops/s)", "shared (Kops/s)", "dedicated (Kops/s)")
	for _, r := range rows {
		for _, n := range scale.Threads {
			tb.AddRow(r.Workload, n, r.PA.Throughput/1e3, r.Shared[n].Throughput/1e3, r.Dedic[n].Throughput/1e3)
		}
	}
	return Report{ID: "fig7", Title: "Index throughput vs #threads (PA-Tree uses 1 thread)", Table: tb,
		Notes: "PA-Tree with 1 thread beats both baselines at every thread count (paper: >=5x); baselines peak near 32 threads then degrade"}
}

// Fig8 renders latency vs threads.
func Fig8(rows []SchemeRows, scale Scale) Report {
	tb := metrics.NewTable("workload", "threads", "PA-Tree (us)", "shared (us)", "dedicated (us)")
	for _, r := range rows {
		for _, n := range scale.Threads {
			tb.AddRow(r.Workload, n,
				float64(r.PA.MeanLatency)/1e3,
				float64(r.Shared[n].MeanLatency)/1e3,
				float64(r.Dedic[n].MeanLatency)/1e3)
		}
	}
	return Report{ID: "fig8", Title: "Operation latency vs #threads", Table: tb,
		Notes: "baseline latency grows with threads, exceeding 10^4 us at 128; PA-Tree stays competitive with the best baseline point"}
}

// Table1 renders the runtime statistics at the baselines' best thread
// count (32, per the paper).
func Table1(rows []SchemeRows) Report {
	tb := metrics.NewTable("method", "outstanding I/Os", "IOPS (10^3)", "CPU consumption", "context switches")
	r := rows[0] // default workload
	add := func(name string, s RunStats) {
		tb.AddRow(name, s.Outstanding, s.IOPS/1e3, s.CPU, s.CtxSwitches)
	}
	add("shared(32)", r.Shared[32])
	add("dedicated(32)", r.Dedic[32])
	add("PA-Tree", r.PA)
	return Report{ID: "table1", Title: "Runtime statistics (default workload)", Table: tb,
		Notes: "PA-Tree keeps more outstanding I/Os with ~1000x fewer context switches and the lowest CPU"}
}

// Table2 renders CPU cycles per operation.
func Table2(rows []SchemeRows) Report {
	tb := metrics.NewTable("method", "CPU cycles (10^3) per op")
	r := rows[0]
	tb.AddRow("PA-Tree", r.PA.CyclesPerOp)
	tb.AddRow("dedicated(32)", r.Dedic[32].CyclesPerOp)
	tb.AddRow("shared(32)", r.Shared[32].CyclesPerOp)
	return Report{ID: "table2", Title: "CPU consumption per operation", Table: tb,
		Notes: "baselines consume 1-2 orders of magnitude more cycles per op than PA-Tree"}
}

// Fig9 renders the CPU breakdown. The trailing sum column is a sanity
// check on the live accounting: the category fractions of attributed
// CPU must cover (essentially) all of it.
func Fig9(rows []SchemeRows) Report {
	tb := metrics.NewTable("method", "real work %", "synchronization %", "NVMe %", "scheduling %", "others %", "sum %")
	r := rows[0]
	add := func(name string, s RunStats) {
		row := []any{name}
		sum := 0.0
		for _, f := range s.Breakdown {
			row = append(row, f*100)
			sum += f * 100
		}
		row = append(row, sum)
		tb.AddRow(row...)
	}
	add("PA-Tree", r.PA)
	add("dedicated(32)", r.Dedic[32])
	add("shared(32)", r.Shared[32])
	return Report{ID: "fig9", Title: "CPU consumption breakdown", Table: tb,
		Notes: "PA-Tree spends >50% on real work; baselines spend most cycles on synchronization/context switches with <20% real work"}
}

// ─── Figure 10: probing strategies ──────────────────────────────────────

// Fig10 compares workload-aware probing with avg-latency and fixed-cycle
// probing.
func Fig10(scale Scale) Report {
	tb := metrics.NewTable("policy", "Kops/s", "mean latency (us)", "CPU", "probes/s (10^3)")
	run := func(p sched.Policy) RunStats {
		cfg := paTreeConfig(0, core.StrongPersistence)
		cfg.Policy = p
		return RunPATree(PAConfig{Scale: scale, Tree: cfg, Gen: defaultGen(scale, 10, 0.3)})
	}
	add := func(name string, s RunStats) {
		tb.AddRow(name, s.Throughput/1e3, float64(s.MeanLatency)/1e3, s.CPU,
			float64(s.Probes)/scale.Measure.Seconds()/1e3)
	}
	add("workload-aware", run(workloadAware(20*time.Microsecond)))
	add("avg-latency", run(sched.NewAvgLatency()))
	for _, cyc := range []time.Duration{1, 5, 20, 50, 100, 200} {
		add(fmt.Sprintf("fixed %dus", cyc), run(sched.NewFixedCycle(cyc*time.Microsecond)))
	}
	return Report{ID: "fig10", Title: "Probing strategies (default workload)", Table: tb,
		Notes: "workload-aware probing beats every fixed cycle and the avg-latency strawman on throughput; very short cycles collapse throughput, very long ones inflate latency"}
}

// ─── Figure 11: dedicated polling thread ────────────────────────────────

// Fig11 compares PA-Tree with PAD-Tree and PAD+-Tree.
func Fig11(scale Scale) Report {
	tb := metrics.NewTable("variant", "Kops/s", "CPU consumption")
	run := func(poller core.Poller) RunStats {
		cfg := paTreeConfig(0, core.StrongPersistence)
		cfg.Poller = poller
		return RunPATree(PAConfig{Scale: scale, Tree: cfg, Gen: defaultGen(scale, 10, 0.3)})
	}
	s := run(core.PollerInline)
	tb.AddRow("PA-Tree", s.Throughput/1e3, s.CPU)
	s = run(core.PollerDedicatedSpin)
	tb.AddRow("PAD-Tree", s.Throughput/1e3, s.CPU)
	s = run(core.PollerDedicatedModel)
	tb.AddRow("PAD+-Tree", s.Throughput/1e3, s.CPU)
	return Report{ID: "fig11", Title: "Workload-aware vs dedicated polling", Table: tb,
		Notes: "PAD-Tree is much worse despite higher CPU (spin-probing interferes with the device); PAD+-Tree has similar CPU to PA-Tree but slightly lower throughput (cross-thread handoff)"}
}

// ─── Figure 12: prioritized execution ───────────────────────────────────

// Fig12 sweeps key skewness with prioritization on and off.
func Fig12(scale Scale) Report {
	tb := metrics.NewTable("zipf alpha", "prioritized (Kops/s)", "FIFO (Kops/s)", "prioritized lat (us)", "FIFO lat (us)")
	for _, theta := range []float64{0.001, 0.3, 0.6, 0.9} {
		run := func(prio bool) RunStats {
			cfg := paTreeConfig(0, core.StrongPersistence)
			cfg.Prioritized = prio
			return RunPATree(PAConfig{Scale: scale, Tree: cfg, Gen: defaultGen(scale, 50, theta)})
		}
		p, f := run(true), run(false)
		tb.AddRow(theta, p.Throughput/1e3, f.Throughput/1e3,
			float64(p.MeanLatency)/1e3, float64(f.MeanLatency)/1e3)
	}
	return Report{ID: "fig12", Title: "Prioritized execution vs key skewness (update-heavy)", Table: tb,
		Notes: "prioritized execution wins on throughput and latency, with the margin growing as skew (latch contention) rises"}
}

// ─── Figure 13: CPU yielding ────────────────────────────────────────────

// Fig13 sweeps the open-loop input rate with yielding on and off.
func Fig13(scale Scale) Report {
	tb := metrics.NewTable("input rate (Kops/s)", "CPU with yield", "CPU no yield", "Kops/s with yield", "Kops/s no yield")
	for _, rate := range []float64{25e3, 50e3, 100e3, 200e3, 400e3} {
		run := func(yield time.Duration) RunStats {
			cfg := paTreeConfig(0, core.StrongPersistence)
			cfg.Policy = workloadAware(yield)
			return RunPATree(PAConfig{Scale: scale, Tree: cfg,
				Gen: defaultGen(scale, 10, 0.3), ArrivalRate: rate})
		}
		y := run(50 * time.Microsecond)
		n := run(0)
		tb.AddRow(rate/1e3, y.CPU, n.CPU, y.Throughput/1e3, n.Throughput/1e3)
	}
	return Report{ID: "fig13", Title: "CPU yielding vs input rate", Table: tb,
		Notes: "without yielding CPU stays high (>0.75 cores) even at low rates; yielding scales CPU with load without hurting throughput"}
}

// ─── Figure 14: buffering ───────────────────────────────────────────────

// Fig14 sweeps the buffer size for strong and weak persistence.
func Fig14(scale Scale) Report {
	// Index pages ≈ preload / ~17 pairs per 70%-full leaf.
	indexPages := scale.PreloadKeys / 17
	tb := metrics.NewTable("buffer (% of index)", "strong (Kops/s)", "weak (Kops/s)", "strong lat (us)", "weak lat (us)")
	for _, pct := range []int{0, 1, 5, 10, 20} {
		pages := indexPages * pct / 100
		s := RunPATree(PAConfig{Scale: scale, Tree: paTreeConfig(pages, core.StrongPersistence),
			Gen: defaultGen(scale, 10, 0.3)})
		w := RunPATree(PAConfig{Scale: scale, Tree: paTreeConfig(pages, core.WeakPersistence),
			Gen: defaultGen(scale, 10, 0.3), SyncEvery: 1000})
		tb.AddRow(pct, s.Throughput/1e3, w.Throughput/1e3,
			float64(s.MeanLatency)/1e3, float64(w.MeanLatency)/1e3)
	}
	return Report{ID: "fig14", Title: "Data buffering (default workload)", Table: tb,
		Notes: "even a small buffer boosts performance (root/inner locality); weak persistence beats strong at every size"}
}

// ─── Figure 15: end-to-end ──────────────────────────────────────────────

// Fig15 compares PA-Tree against Blink-Tree, LCB-Tree and the LSM store
// under strong and weak persistence on the synthetic default workload and
// the two real-workload stand-ins.
func Fig15(scale Scale) Report {
	tb := metrics.NewTable("workload", "method", "persistence", "Kops/s", "mean latency (us)")
	// Baselines run multi-threaded (32, the §V-A sweet spot); buffers are
	// 10% of the index size, sync every 1000 updates in weak mode.
	threads := 32
	gens := func(which string) workload.Generator {
		switch which {
		case "t-drive":
			return workload.NewTDrive(workload.TDriveConfig{
				PreloadRecords: scale.PreloadKeys, Seed: scale.Seed})
		case "sse":
			return workload.NewSSE(workload.SSEConfig{
				PreloadOrders: scale.PreloadKeys, Seed: scale.Seed})
		default:
			return defaultGen(scale, 10, 0.3)
		}
	}
	indexPages := scale.PreloadKeys / 12
	bufPages := indexPages / 10
	for _, wl := range []string{"ycsb-default", "t-drive", "sse"} {
		for _, persist := range []syncbtree.Persistence{syncbtree.Strong, syncbtree.Weak} {
			pmode := core.StrongPersistence
			syncEvery := 0
			if persist == syncbtree.Weak {
				pmode = core.WeakPersistence
				syncEvery = 1000
			}
			pa := RunPATree(PAConfig{Scale: scale, Tree: paTreeConfig(bufPages, pmode),
				Gen: gens(wl), SyncEvery: syncEvery})
			tb.AddRow(wl, "PA-Tree", persistName(persist), pa.Throughput/1e3, float64(pa.MeanLatency)/1e3)
			for _, kind := range []SyncKind{KindBlink, KindLCB, KindLSM} {
				s := RunSync(SyncConfig{Scale: scale, Kind: kind, Threads: threads,
					Gen: gens(wl), Persistence: persist, CachePages: bufPages, SyncEvery: syncEvery})
				tb.AddRow(wl, kind.String(), persistName(persist), s.Throughput/1e3, float64(s.MeanLatency)/1e3)
			}
		}
	}
	return Report{ID: "fig15", Title: "End-to-end comparison (baselines at 32 threads)", Table: tb,
		Notes: "PA-Tree ~2x the best baseline throughput and >=30% lower latency; weak beats strong for every method; the LSM's strong-persistence penalty is extreme (sync per write)"}
}

// ─── Shard scaling (beyond the paper): PA-Tree × shards ─────────────────

// FigShards sweeps the shard count for the Fig 7-style scaling curve:
// N single-threaded PA-Tree workers over disjoint partitions of one
// device, keyspace hash-partitioned, closed loop with the standard
// concurrency per worker. The device's internal parallelism is raised
// so it is not the bottleneck in the swept range — the curve isolates
// how far the paper's one-thread design stacks before the shared
// controller interferes.
func FigShards(scale Scale) Report {
	tb := metrics.NewTable("shards", "Kops/s", "mean latency (us)", "p99 latency (us)", "CPU (cores)")
	for _, n := range []int{1, 2, 4, 8} {
		s := RunShardedPATree(ShardedPAConfig{
			Scale:  scale,
			Shards: n,
			MkTree: func() core.Config { return paTreeConfig(0, core.StrongPersistence) },
			Gen:    defaultGen(scale, 10, 0.3),
			Device: nvme.SimConfig{Parallelism: 256},
		})
		tb.AddRow(n, s.Throughput/1e3, float64(s.MeanLatency)/1e3, float64(s.P99Latency)/1e3, s.CPU)
	}
	return Report{ID: "figshards", Title: "PA-Tree shard scaling (default workload, device parallelism 256)", Table: tb,
		Notes: "throughput grows monotonically 1->4 shards (each shard is one paper-style working thread); CPU grows ~linearly with shards; beyond 4 the shards' combined submit/probe traffic saturates the shared controller and throughput declines — the same interference mechanism as Fig 3c"}
}

// ─── Multi-device shard scaling (beyond the paper) ──────────────────────

// MultiDevTopologies is the shard-count × device-count sweep FigMultiDev
// charts and the CI bench gate (cmd/paexp -bench-out) measures.
var MultiDevTopologies = [][2]int{{1, 1}, {2, 1}, {4, 1}, {8, 1}, {4, 2}, {8, 2}, {8, 4}}

// MultiDevSweep runs the standard multi-device scaling sweep and returns
// one stats record per entry of MultiDevTopologies, in order.
func MultiDevSweep(scale Scale) []MultiDevStats {
	out := make([]MultiDevStats, 0, len(MultiDevTopologies))
	for _, topo := range MultiDevTopologies {
		out = append(out, RunMultiDevice(MultiDevConfig{
			Scale:   scale,
			Shards:  topo[0],
			Devices: topo[1],
			MkTree:  func() core.Config { return paTreeConfig(0, core.StrongPersistence) },
			Gen:     defaultGen(scale, 10, 0.3),
			Device:  nvme.SimConfig{Parallelism: 256},
		}))
	}
	return out
}

// FigMultiDev sweeps shard count × device count: the FigShards curve
// peaks at 4 shards because all shards share one controller's
// submit/probe bandwidth; spreading the same shards over more devices
// removes that interference, so the curve keeps climbing where the
// single-device one turns over.
func FigMultiDev(scale Scale) Report {
	tb := metrics.NewTable("shards", "devices", "Kops/s", "mean latency (us)", "p99 latency (us)", "CPU (cores)")
	for i, s := range MultiDevSweep(scale) {
		topo := MultiDevTopologies[i]
		tb.AddRow(topo[0], topo[1], s.Throughput/1e3, float64(s.MeanLatency)/1e3, float64(s.P99Latency)/1e3, s.CPU)
	}
	return Report{ID: "figmultidev", Title: "PA-Tree shard scaling across devices (default workload, device parallelism 256)", Table: tb,
		Notes: "single-device rows reproduce figshards (peak at 4 shards, decline at 8); the same 8 shards on 2 devices clear the 4-shard single-device peak ~2x because each controller serves half the submit/probe traffic; at 8x4 every pair of shards has a private controller and the curve returns to near-linear (~4.4x the 2-shard point)"}
}

func persistName(p syncbtree.Persistence) string {
	if p == syncbtree.Weak {
		return "weak"
	}
	return "strong"
}

// All runs every report at the given scale (the cmd/paexp entry point).
func All(scale Scale) []Report {
	rows := RunSchemes(scale, []int{0, 10, 50})
	return []Report{
		Fig3a(scale), Fig3b(scale), Fig3c(scale),
		Fig7(rows, scale), Fig8(rows, scale),
		Table1(rows), Table2(rows), Fig9(rows),
		Fig10(scale), Fig11(scale), Fig12(scale), Fig13(scale),
		Fig14(scale), Fig15(scale), FigShards(scale), FigMultiDev(scale), FigReadHeavy(scale),
	}
}
