package harness

import (
	"testing"
	"time"

	"github.com/patree/patree/internal/core"
)

// tinyScale keeps harness unit tests fast; the benches and cmd/paexp use
// the larger scales.
func tinyScale() Scale {
	return Scale{
		PreloadKeys: 20_000,
		Warmup:      20 * time.Millisecond,
		Measure:     80 * time.Millisecond,
		Threads:     []int{1, 32},
		Concurrency: 64,
		Seed:        7,
	}
}

func TestRunPATreeProducesStats(t *testing.T) {
	s := tinyScale()
	rs := RunPATree(PAConfig{Scale: s, Tree: paTreeConfig(0, core.StrongPersistence),
		Gen: defaultGen(s, 10, 0.3)})
	if rs.Ops == 0 || rs.Throughput <= 0 {
		t.Fatalf("no ops measured: %+v", rs)
	}
	if rs.MeanLatency <= 0 || rs.CPU <= 0 || rs.IOPS <= 0 {
		t.Fatalf("stats incomplete: %+v", rs)
	}
	// Single-threaded PA-Tree: at most ~1 core busy, few context switches.
	if rs.CPU > 1.3 {
		t.Fatalf("PA-Tree CPU = %v cores", rs.CPU)
	}
	if rs.CtxSwitches > 5000 {
		t.Fatalf("PA-Tree context switches = %d", rs.CtxSwitches)
	}
	if rs.Outstanding < 4 {
		t.Fatalf("avg outstanding I/Os = %v; asynchrony not working", rs.Outstanding)
	}
}

func TestRunSyncProducesStats(t *testing.T) {
	s := tinyScale()
	for _, kind := range []SyncKind{KindDedicated, KindShared} {
		rs := RunSync(SyncConfig{Scale: s, Kind: kind, Threads: 8, Gen: defaultGen(s, 10, 0.3)})
		if rs.Ops == 0 {
			t.Fatalf("%v: no ops", kind)
		}
		if rs.CtxSwitches == 0 {
			t.Fatalf("%v: no context switches in a blocking design", kind)
		}
	}
}

// TestHeadlineClaim is the paper's core result at miniature scale:
// single-threaded PA-Tree beats the multi-threaded sync baselines.
func TestHeadlineClaim(t *testing.T) {
	s := tinyScale()
	pa := RunPATree(PAConfig{Scale: s, Tree: paTreeConfig(0, core.StrongPersistence),
		Gen: defaultGen(s, 10, 0.3)})
	ded := RunSync(SyncConfig{Scale: s, Kind: KindDedicated, Threads: 32, Gen: defaultGen(s, 10, 0.3)})
	sh := RunSync(SyncConfig{Scale: s, Kind: KindShared, Threads: 32, Gen: defaultGen(s, 10, 0.3)})
	if pa.Throughput < 2*ded.Throughput {
		t.Fatalf("PA-Tree %.0f ops/s not clearly above dedicated(32) %.0f", pa.Throughput, ded.Throughput)
	}
	if pa.Throughput < 2*sh.Throughput {
		t.Fatalf("PA-Tree %.0f ops/s not clearly above shared(32) %.0f", pa.Throughput, sh.Throughput)
	}
	// CPU efficiency: PA-Tree at least 5x fewer cycles/op than baselines.
	if pa.CyclesPerOp*5 > ded.CyclesPerOp {
		t.Fatalf("cycles/op: PA=%v dedicated=%v", pa.CyclesPerOp, ded.CyclesPerOp)
	}
	// Context switches orders of magnitude apart.
	if pa.CtxSwitches*10 > ded.CtxSwitches {
		t.Fatalf("ctx switches: PA=%d dedicated=%d", pa.CtxSwitches, ded.CtxSwitches)
	}
}

func TestFig3Shapes(t *testing.T) {
	s := tinyScale()
	r := Fig3a(s)
	if r.Table == nil || len(r.Table.String()) == 0 {
		t.Fatal("empty fig3a")
	}
	// Spot-check the shape directly.
	iops1, _ := rawDeviceRun(1, 1, 0, 20*time.Microsecond, 100*time.Millisecond)
	iops64, _ := rawDeviceRun(1, 64, 0, 20*time.Microsecond, 100*time.Millisecond)
	if iops64 < 8*iops1 {
		t.Fatalf("QD64 %.0f not >> QD1 %.0f", iops64, iops1)
	}
}

func TestFig13YieldSavesCPU(t *testing.T) {
	s := tinyScale()
	cfgY := paTreeConfig(0, core.StrongPersistence)
	cfgY.Policy = workloadAware(20 * time.Microsecond)
	y := RunPATree(PAConfig{Scale: s, Tree: cfgY, Gen: defaultGen(s, 10, 0.3), ArrivalRate: 25e3})
	cfgN := paTreeConfig(0, core.StrongPersistence)
	cfgN.Policy = workloadAware(0)
	n := RunPATree(PAConfig{Scale: s, Tree: cfgN, Gen: defaultGen(s, 10, 0.3), ArrivalRate: 25e3})
	if n.CPU < 0.7 {
		t.Fatalf("no-yield CPU = %v, want busy-poll waste", n.CPU)
	}
	if y.CPU > 0.6*n.CPU {
		t.Fatalf("yielding CPU %v not clearly below no-yield %v", y.CPU, n.CPU)
	}
	// Throughput must not collapse (both should complete ~the offered load).
	if y.Throughput < 0.8*n.Throughput {
		t.Fatalf("yielding hurt throughput: %v vs %v", y.Throughput, n.Throughput)
	}
}

func TestFig14BufferingHelps(t *testing.T) {
	s := tinyScale()
	none := RunPATree(PAConfig{Scale: s, Tree: paTreeConfig(0, core.StrongPersistence),
		Gen: defaultGen(s, 10, 0.3)})
	buffered := RunPATree(PAConfig{Scale: s, Tree: paTreeConfig(s.PreloadKeys/17/5, core.StrongPersistence),
		Gen: defaultGen(s, 10, 0.3)})
	if buffered.Throughput < 1.2*none.Throughput {
		t.Fatalf("buffering did not help: %.0f vs %.0f", buffered.Throughput, none.Throughput)
	}
}

func TestReportRendering(t *testing.T) {
	s := tinyScale()
	r := Fig3c(s)
	out := r.String()
	if len(out) < 50 || r.ID != "fig3c" {
		t.Fatalf("report: %q", out)
	}
}
