package harness

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"github.com/patree/patree/internal/core"
	"github.com/patree/patree/internal/nvme"
	"github.com/patree/patree/internal/sim"
	"github.com/patree/patree/internal/simos"
	"github.com/patree/patree/internal/trace"
)

// pipelineTraceRun drives one traced, journaled shard through a fixed
// mixed workload and returns the Chrome trace. pipelined toggles the
// overlap machinery — speculative child prefetch and depth-8 WAL write
// pipelining — which by design DOES change the simulated I/O schedule;
// what must hold is that any given configuration is same-seed
// reproducible, and that the default (off) configuration is
// byte-identical to an explicitly-disabled one.
func pipelineTraceRun(t *testing.T, seed uint64, pipelined, explicitOff bool) []byte {
	t.Helper()
	eng := sim.NewEngine()
	sd := nvme.NewSimDevice(eng, nvme.SimConfig{Seed: seed, NumBlocks: 1 << 13})
	osched := simos.New(eng, simos.Config{})
	meta, err := core.Format(sd)
	if err != nil {
		t.Fatalf("format: %v", err)
	}
	tracer := core.NewTracer(1 << 15)
	cfg := core.Config{
		Persistence: core.StrongPersistence,
		BufferPages: 32, // tiny: point ops miss, so prefetch has work
		Journal:     true,
		Tracer:      tracer,
	}
	if pipelined {
		cfg.SpeculativePrefetch = true
		cfg.WALWriteDepth = 8
	} else if explicitOff {
		cfg.SpeculativePrefetch = false
		cfg.SpecBudget = 16 // budget without the switch must stay inert
		cfg.WALWriteDepth = 1
	}
	var tree *core.Tree
	th := osched.Spawn("patree", func(*simos.Thread) { tree.Run() })
	tree, err = core.New(sd, cfg, core.SimEnv{T: th}, meta)
	if err != nil {
		t.Fatalf("new tree: %v", err)
	}

	rng := sim.NewRNG(seed ^ 0x919e)
	const total = 400
	resolved := 0
	eng.After(0, func() {
		for i := 0; i < total; i++ {
			key := 1 + rng.Uint64n(256)
			var op *core.Op
			if rng.Intn(100) < 60 {
				op = core.NewInsert(key, []byte(fmt.Sprintf("v%d", key)), func(*core.Op) { resolved++ })
			} else {
				op = core.NewSearch(key, func(*core.Op) { resolved++ })
			}
			tree.Admit(op)
		}
	})
	for resolved < total {
		if !eng.Step() {
			t.Fatalf("seed %d pipelined=%v: run wedged at %d/%d", seed, pipelined, resolved, total)
		}
	}
	st := tree.StatsSnapshot()
	if pipelined && st.SpecIssued == 0 {
		t.Fatalf("seed %d: pipelined run issued no speculative reads — the workload no longer exercises the feature", seed)
	}
	if !pipelined && (st.SpecIssued != 0 || st.SpecHits != 0 || st.SpecCancelled != 0 || st.SpecWasted != 0) {
		t.Fatalf("seed %d: speculation counters moved with the feature off: %+v", seed, st)
	}
	tree.Stop()
	eng.RunFor(time.Second)

	events := tracer.Events()
	if len(events) == 0 {
		t.Fatalf("seed %d: no trace events", seed)
	}
	var buf bytes.Buffer
	if err := tracer.WriteChromeJSONProcs(&buf, []trace.Process{{Name: "patree", Events: events}}); err != nil {
		t.Fatalf("seed %d: write trace: %v", seed, err)
	}
	return buf.Bytes()
}

// TestPipelinedOffTraceDeterminism is the determinism regression for
// the overlap machinery (ISSUE 10): the options default to off, and a
// default-configured run must export a byte-identical trace to one
// where speculation and WAL pipelining are explicitly disabled — the
// gates must leave the classic single-in-flight schedule untouched. If
// this breaks, every pinned simulated experiment is suspect.
func TestPipelinedOffTraceDeterminism(t *testing.T) {
	if (core.Config{}).SpeculativePrefetch {
		t.Fatal("SpeculativePrefetch must default to off")
	}
	d := (core.Config{}).WithDefaults()
	if d.SpeculativePrefetch {
		t.Fatal("WithDefaults must not switch SpeculativePrefetch on")
	}
	if d.WALWriteDepth != 1 {
		t.Fatalf("WithDefaults WALWriteDepth = %d, want the classic 1", d.WALWriteDepth)
	}
	const seed = 42
	def := pipelineTraceRun(t, seed, false, false)
	off := pipelineTraceRun(t, seed, false, true)
	if !bytes.Equal(def, off) {
		t.Fatalf("seed %d: explicit-off config changed the simulated trace (%d vs %d bytes) — the pipelining gates leak into the classic path", seed, len(def), len(off))
	}
	def2 := pipelineTraceRun(t, seed, false, false)
	if !bytes.Equal(def, def2) {
		t.Fatalf("seed %d: same-seed default runs diverged (%d vs %d bytes)", seed, len(def), len(def2))
	}
}

// TestPipelinedOnTraceRepeatable pins that the pipelined configuration
// is itself deterministic: speculation and WAL pipelining reshape the
// I/O schedule, but the same seed must reshape it identically every
// time — stress reproductions and the figpipeline experiment depend on
// it.
func TestPipelinedOnTraceRepeatable(t *testing.T) {
	const seed = 77
	on1 := pipelineTraceRun(t, seed, true, false)
	on2 := pipelineTraceRun(t, seed, true, false)
	if !bytes.Equal(on1, on2) {
		t.Fatalf("seed %d: same-seed pipelined runs diverged (%d vs %d bytes)", seed, len(on1), len(on2))
	}
}
