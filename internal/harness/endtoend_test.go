package harness

import (
	"testing"
	"time"

	"github.com/patree/patree/internal/baseline/syncbtree"
	"github.com/patree/patree/internal/workload"
)

// microScale keeps the end-to-end loader paths fast enough for unit tests.
func microScale() Scale {
	return Scale{
		PreloadKeys: 5_000,
		Warmup:      10 * time.Millisecond,
		Measure:     40 * time.Millisecond,
		Concurrency: 32,
		Seed:        3,
	}
}

// TestFig15BaselinePaths exercises every baseline engine through the
// Fig 15 driver (including the Blink and LSM load-then-flip-persistence
// paths) on the default workload.
func TestFig15BaselinePaths(t *testing.T) {
	s := microScale()
	for _, kind := range []SyncKind{KindBlink, KindLCB, KindLSM} {
		for _, p := range []syncbtree.Persistence{syncbtree.Strong, syncbtree.Weak} {
			rs := RunSync(SyncConfig{
				Scale: s, Kind: kind, Threads: 8,
				Gen:         defaultGen(s, 10, 0.3),
				Persistence: p, CachePages: 512, SyncEvery: 1000,
			})
			if rs.Ops == 0 {
				t.Fatalf("%v/%v: no ops completed", kind, p)
			}
			if rs.MeanLatency <= 0 {
				t.Fatalf("%v/%v: no latency recorded", kind, p)
			}
		}
	}
}

// TestFig15WorkloadGenerators drives PA-Tree over the synthetic T-Drive
// and SSE stand-ins (range-heavy mixes) end to end.
func TestFig15WorkloadGenerators(t *testing.T) {
	s := microScale()
	gens := []workload.Generator{
		workload.NewTDrive(workload.TDriveConfig{PreloadRecords: s.PreloadKeys, Taxis: 200, Seed: s.Seed}),
		workload.NewSSE(workload.SSEConfig{PreloadOrders: s.PreloadKeys, Stocks: 100, Seed: s.Seed}),
	}
	for _, g := range gens {
		rs := RunPATree(PAConfig{
			Scale: s,
			Tree:  paTreeConfig(512, 0),
			Gen:   g,
		})
		if rs.Ops == 0 {
			t.Fatalf("%s: no ops completed", g.Name())
		}
	}
}

// TestWeakBeatsStrongForLogStructured checks Fig 15's persistence split
// where it must appear: the per-update-sync engines.
func TestWeakBeatsStrongForLogStructured(t *testing.T) {
	s := microScale()
	run := func(p syncbtree.Persistence) RunStats {
		return RunSync(SyncConfig{Scale: s, Kind: KindLSM, Threads: 8,
			Gen: defaultGen(s, 50, 0.3), Persistence: p, CachePages: 512, SyncEvery: 1000})
	}
	strong := run(syncbtree.Strong)
	weak := run(syncbtree.Weak)
	if weak.Throughput < 1.5*strong.Throughput {
		t.Fatalf("weak LSM %.0f not clearly above strong %.0f (sync-per-write penalty missing)",
			weak.Throughput, strong.Throughput)
	}
}
