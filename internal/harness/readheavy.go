package harness

import (
	"fmt"
	"time"

	"github.com/patree/patree/internal/core"
	"github.com/patree/patree/internal/metrics"
	"github.com/patree/patree/internal/nvme"
	"github.com/patree/patree/internal/simos"
	"github.com/patree/patree/internal/workload"
)

// This file is the read-heavy harness for Config.ConcurrentReads: a
// sharded closed-loop run where point lookups first try the optimistic
// published-page descent, exactly as an embedder's reader goroutines
// would through DB.Get. In the simulation the descent runs at event
// granularity on the driver (it is real host work, invisible to the
// virtual machine), so a served read charges only ClientReadCost of
// virtual client time — the modeled cost of the caller's own descent —
// and never touches the worker. Everything unservable (cold pages,
// pending keys, writes, scans) takes the pipeline as usual. Determinism
// holds: the driver is part of the single-threaded simulation, so
// same-seed runs are identical.

// ReadHeavyConfig configures one RunShardedReadHeavy run.
type ReadHeavyConfig struct {
	Scale  Scale
	Shards int
	// ConcurrentReads toggles the optimistic fast path; off is the
	// pipeline-only control every speedup is measured against.
	ConcurrentReads bool
	// UpdatePercent is the write share (the read-heavy default is 5).
	UpdatePercent int
	// Theta is the zipf skew (default 0.3, the paper's default).
	Theta float64
	// BufferPages sizes each shard's page buffer. The published table
	// mirrors buffer residency, so this bounds how much of the index the
	// fast path can ever serve; the read-heavy figure buffers the whole
	// index, the §V-A zero-buffer configuration would serve nothing.
	BufferPages int
	// ClientReadCost is the virtual time one served optimistic read costs
	// the calling client (descent + copy; the default models ~2µs of
	// host work measured by BenchmarkConcurrentGet). It also paces the
	// closed loop's re-admission after a served read.
	ClientReadCost time.Duration
	Device         nvme.SimConfig
}

// RunShardedReadHeavy executes one read-heavy configuration and reports
// merged stats. RunStats.ReaderServed counts lookups answered by the
// optimistic path; ReaderFallback counts lookups it declined (always 0
// with ConcurrentReads off — every read is pipeline traffic there).
func RunShardedReadHeavy(cfg ReadHeavyConfig) RunStats {
	n := cfg.Shards
	if n < 1 {
		n = 1
	}
	if cfg.UpdatePercent == 0 {
		cfg.UpdatePercent = 5
	}
	if cfg.Theta == 0 {
		cfg.Theta = 0.3
	}
	if cfg.ClientReadCost <= 0 {
		cfg.ClientReadCost = 2 * time.Microsecond
	}
	gen := defaultGen(cfg.Scale, cfg.UpdatePercent, cfg.Theta)
	m := newMachine(cfg.Scale.Seed, cfg.Device)

	preload := gen.Preload()
	parts := make([][]core.KV, n)
	for _, kv := range preload {
		si := core.ShardOf(kv.Key, n)
		parts[si] = append(parts[si], kv)
	}

	trees := make([]*core.Tree, n)
	workers := make([]*simos.Thread, n)
	per := m.dev.NumBlocks() / uint64(n)
	for i := 0; i < n; i++ {
		var dev nvme.Device = m.dev
		if n > 1 {
			p, err := nvme.NewPartition(m.dev, uint64(i)*per, per)
			if err != nil {
				panic(err)
			}
			dev = p
		}
		meta, err := core.BulkLoad(dev.(core.ImageWriter), parts[i], 0.7)
		if err != nil {
			panic(err)
		}
		treeCfg := paTreeConfig(cfg.BufferPages, core.StrongPersistence)
		treeCfg.ConcurrentReads = cfg.ConcurrentReads
		i := i
		workers[i] = m.os.Spawn(fmt.Sprintf("patree-shard%d", i), func(*simos.Thread) { trees[i].Run() })
		trees[i], err = core.New(dev, treeCfg, core.SimEnv{T: workers[i]}, meta)
		if err != nil {
			panic(err)
		}
	}

	measuredOps := uint64(0)
	var served, fallback uint64
	inWindow := false
	stopping := false
	servedLat := metrics.NewHistogram()
	var admit func()
	onDone := func(*core.Op) {
		if inWindow {
			measuredOps++
		}
		if !stopping {
			admit()
		}
	}
	admit = func() {
		if stopping {
			return
		}
		w := gen.Next()
		si := core.ShardOf(w.Key, n)
		if cfg.ConcurrentReads && w.Kind == workload.OpSearch {
			if _, _, ok := trees[si].ConcurrentGet(w.Key); ok {
				if inWindow {
					measuredOps++
					served++
					servedLat.Record(cfg.ClientReadCost)
				}
				// The client's own descent cost paces the closed loop; the
				// worker never sees this operation.
				m.eng.After(cfg.ClientReadCost, admit)
				return
			}
			if inWindow {
				fallback++
			}
		}
		trees[si].Admit(toOp(w, onDone))
	}
	conc := cfg.Scale.Concurrency
	if conc <= 0 {
		conc = 64
	}
	base := m.eng.Now()
	m.eng.After(0, func() {
		for i := 0; i < conc*n; i++ {
			admit()
		}
	})
	m.resetAt(base.Add(cfg.Scale.Warmup), func() {
		for i, t := range trees {
			t.ResetStats()
			workers[i].CPU.Reset()
		}
		inWindow = true
	})
	m.eng.RunUntil(base.Add(cfg.Scale.Warmup + cfg.Scale.Measure))

	label := "reads=pipeline"
	if cfg.ConcurrentReads {
		label = "reads=optimistic"
	}
	rs := RunStats{Label: fmt.Sprintf("PA-Tree x%d %s", n, label)}
	lat := metrics.NewHistogram()
	lat.Merge(servedLat)
	var cpus []*metrics.CPUAccount
	var idleSpin time.Duration
	for _, t := range trees {
		st := t.StatsSnapshot()
		lat.Merge(st.Latency)
		idleSpin += st.IdleSpinTime
		cpus = append(cpus, t.CPUSnapshot())
		rs.LatchWaits += t.LatchWaits()
		rs.Probes += st.Probes
	}
	m.finish(&rs, cfg.Scale.Measure, cpus, measuredOps, lat, idleSpin)
	rs.ReaderServed = served
	rs.ReaderFallback = fallback
	stopping = true
	for _, t := range trees {
		t.Stop()
	}
	m.eng.RunFor(2 * time.Second)
	return rs
}

// FigReadHeavy sweeps shard counts on the 95/5 read-heavy mix with the
// optimistic reader off and on (whole index buffered, so publication
// coverage — not buffer misses — decides the serve rate).
func FigReadHeavy(scale Scale) Report {
	tb := metrics.NewTable("shards", "pipeline (Kops/s)", "optimistic (Kops/s)", "speedup",
		"served %", "pipeline lat (us)", "optimistic lat (us)")
	bufPages := scale.PreloadKeys / 12
	for _, n := range []int{1, 2, 4} {
		run := func(conc bool) RunStats {
			return RunShardedReadHeavy(ReadHeavyConfig{
				Scale:           scale,
				Shards:          n,
				ConcurrentReads: conc,
				BufferPages:     bufPages,
				Device:          nvme.SimConfig{Parallelism: 256},
			})
		}
		off := run(false)
		on := run(true)
		servedPct := 0.0
		if tot := on.ReaderServed + on.ReaderFallback; tot > 0 {
			servedPct = 100 * float64(on.ReaderServed) / float64(tot)
		}
		tb.AddRow(n, off.Throughput/1e3, on.Throughput/1e3, on.Throughput/off.Throughput,
			servedPct, float64(off.MeanLatency)/1e3, float64(on.MeanLatency)/1e3)
	}
	return Report{ID: "figreadheavy", Title: "Read-heavy (95/5) throughput: pipeline vs optimistic reads", Table: tb,
		Notes: "with the index buffered and published, the optimistic path serves the vast majority of lookups off the worker thread; per-shard read throughput at least doubles while the pipeline keeps exclusive ownership of writes"}
}
