package core

// ShardOf maps a key to one of n hash partitions of the uint64
// keyspace. The mixer is the splitmix64 finalizer, so adjacent keys
// spread across shards instead of landing in runs (range scans then pay
// a scatter-gather, but point-op load balances under any key pattern).
// Every layer that partitions by key — the public DB, the harness, the
// stress oracles — must agree on this function, which is why it lives
// in core rather than the embedding package.
func ShardOf(key uint64, n int) int {
	if n <= 1 {
		return 0
	}
	z := key + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return int(z % uint64(n))
}
