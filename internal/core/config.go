package core

import (
	"time"

	"github.com/patree/patree/internal/probe"
	"github.com/patree/patree/internal/sched"
	"github.com/patree/patree/internal/trace"
)

// Persistence selects the buffering mode of §III-C.
type Persistence int

const (
	// StrongPersistence writes every node update straight to the NVM; the
	// read-only buffer serves reads and is filled only on I/O completion.
	// A completed update operation is durable.
	StrongPersistence Persistence = iota
	// WeakPersistence absorbs updates in a read-write buffer; dirty pages
	// reach the NVM on eviction or Sync(), merging repeated writes.
	WeakPersistence
)

// String names the mode.
func (p Persistence) String() string {
	if p == WeakPersistence {
		return "weak"
	}
	return "strong"
}

// Poller selects who probes the NVMe completion queue (§V-B, Figure 11).
type Poller int

const (
	// PollerInline is PA-Tree proper: the working thread probes, guided by
	// the scheduling policy.
	PollerInline Poller = iota
	// PollerDedicatedSpin is PAD-Tree: a dedicated thread probes in a
	// tight loop.
	PollerDedicatedSpin
	// PollerDedicatedModel is PAD+-Tree: a dedicated thread probes gated
	// by the workload-aware model.
	PollerDedicatedModel
)

// String names the poller mode.
func (p Poller) String() string {
	switch p {
	case PollerDedicatedSpin:
		return "PAD"
	case PollerDedicatedModel:
		return "PAD+"
	default:
		return "inline"
	}
}

// CostModel holds the virtual CPU cost constants charged by the working
// thread. They are calibrated so PA-Tree's per-operation CPU and its
// Figure 9 breakdown land in the paper's observed ranges (see DESIGN.md);
// the baselines share the same index-logic costs, so all CPU-efficiency
// comparisons are apples-to-apples.
type CostModel struct {
	// NodeVisit: decode a 512B page and binary-search it (real work).
	NodeVisit time.Duration
	// LeafMutate: apply an insert/update/delete and re-encode (real work).
	LeafMutate time.Duration
	// Split: split a node and fix separators (real work).
	Split time.Duration
	// LatchOp: acquire or release one operation latch (synchronization).
	LatchOp time.Duration
	// IOSubmit: append one command to the submission queue (NVMe).
	IOSubmit time.Duration
	// ProbeCall / ProbePerCQE: poll the completion queue (NVMe).
	ProbeCall   time.Duration
	ProbePerCQE time.Duration
	// SchedStep: one pass of the main loop's bookkeeping (scheduling).
	SchedStep time.Duration
	// ReadyPushPop: ready-queue operation (scheduling).
	ReadyPushPop time.Duration
	// IdleSpin: CPU burned per main-loop pass when there is nothing to do
	// and the policy does not yield (scheduling); this is the waste that
	// CPU yielding eliminates in Figure 13.
	IdleSpin time.Duration
	// CrossThreadHandoff: cache-coherence penalty per completion handed
	// between a dedicated poller thread and the working thread
	// (synchronization; Figure 11's PAD/PAD+ overhead).
	CrossThreadHandoff time.Duration
}

// DefaultCosts returns the calibrated cost constants.
func DefaultCosts() CostModel {
	return CostModel{
		NodeVisit:          700 * time.Nanosecond,
		LeafMutate:         900 * time.Nanosecond,
		Split:              1200 * time.Nanosecond,
		LatchOp:            40 * time.Nanosecond,
		IOSubmit:           250 * time.Nanosecond,
		ProbeCall:          300 * time.Nanosecond,
		ProbePerCQE:        60 * time.Nanosecond,
		SchedStep:          60 * time.Nanosecond,
		ReadyPushPop:       40 * time.Nanosecond,
		IdleSpin:           1 * time.Microsecond,
		CrossThreadHandoff: 150 * time.Nanosecond,
	}
}

// Config parameterizes a Tree.
type Config struct {
	// Persistence selects strong or weak buffering semantics.
	Persistence Persistence
	// BufferPages is the buffer capacity in 512B pages (0 disables
	// buffering, the §V-A configuration).
	BufferPages int
	// QueueDepth is the submission queue depth to allocate.
	QueueDepth int
	// InboxDepth bounds the admission ring (rounded up to a power of two;
	// default 4096). A full ring is backpressure: Admit blocks and
	// TryAdmit returns ErrBacklog. In simulated environments the offered
	// concurrency must stay below this bound (see Tree.Admit).
	InboxDepth int
	// Policy is the probe/yield policy; nil selects the workload-aware
	// policy with the package-default trained model and 50µs yield
	// granularity.
	Policy sched.Policy
	// Prioritized enables the §IV-B prioritized ready queue
	// (write-latch holders first, then admission order); when false a
	// plain FIFO is used (the Figure 12 ablation).
	Prioritized bool
	// Poller selects inline (PA-Tree), dedicated spin (PAD-Tree) or
	// dedicated model-gated (PAD+-Tree) polling.
	Poller Poller
	// Costs are the virtual CPU constants; zero value selects defaults.
	Costs CostModel
	// MaxProbeBatch bounds completions reaped per probe (0 = unlimited).
	MaxProbeBatch int
	// MaxIORetries bounds how many times one operation's failed device
	// commands are retried before the tree declares the device failed
	// (ErrDeviceFailed). Transient statuses (media error, timeout,
	// checksum-failed read) are retried with exponential backoff; anything
	// else fails immediately. 0 selects the default (3); negative disables
	// retries entirely.
	MaxIORetries int
	// RetryBackoff is the delay before the first retry; it doubles on each
	// subsequent retry of the same operation. Zero selects the default
	// (50µs).
	RetryBackoff time.Duration
	// Journal enables the full-page-image redo journal: every update
	// operation appends the sealed images of its modified pages (plus the
	// meta page when the root moves) to the device's WAL region before it
	// is acknowledged, so a crash can never lose an acknowledged write or
	// expose a torn multi-page update. Requires a device formatted with a
	// WAL region (Format always lays one out); ignored when the meta page
	// records no region. Off by default: the paper's experiments measure
	// the unjournaled write path.
	Journal bool
	// Tracer, when non-nil, receives lifecycle events (admission, queue
	// and latch waits, I/O slices, completions, probes, yields) from the
	// working thread. Build one with NewTracer so events carry the tree's
	// code and kind name tables. Tracing is pure observation: it never
	// charges CPU, so simulated schedules are identical with it on or off.
	Tracer *trace.Tracer
	// ConcurrentReads maintains the published-page table that lets
	// read-only goroutines answer Gets and Scans optimistically
	// (seqlock-validated B-link descent; see Tree.ConcurrentGet) without
	// entering the admission pipeline. The worker publishes every page it
	// buffers, so this requires BufferPages > 0 to have any effect.
	// Publication is pure observation — it charges no virtual CPU — but
	// the table's atomics are still extra real work on the worker, so it
	// is off by default and sim experiments that pin byte-identical
	// schedules keep it off.
	ConcurrentReads bool
	// SpeculativePrefetch enables the pipelined loop's speculative child
	// prefetch: at drain time the worker walks each queued point
	// operation's predicted root-to-leaf path through buffer-resident
	// pages and issues the first missing page's read before the
	// operation's turn, so the read completes (or is in flight) by the
	// time the operation reaches it. Mispredictions are detected at
	// completion — any intervening data-page write, or residency via
	// another path, drops the speculative image — and operations that
	// reach a page with a speculative read already in flight coalesce
	// onto it instead of issuing a duplicate. Off by default: speculative
	// reads change the simulated I/O schedule, so deterministic
	// experiments that pin byte-identical traces keep it off. See
	// pipeline.go and DESIGN.md §17.
	SpeculativePrefetch bool
	// SpecBudget bounds the speculative reads in flight at once (0
	// selects the default 16 when SpeculativePrefetch is on). The
	// effective budget per pass is additionally capped by device-queue
	// headroom and deferred while the probe policy predicts imminent
	// completions, so speculation fills idle submission slots instead of
	// competing with demand I/O.
	SpecBudget int
	// WALWriteDepth bounds how many WAL block writes the tree-level
	// journal writer keeps in flight at once. 0 or 1 is the classic
	// single-in-flight writer (byte-identical schedules); higher values
	// pipeline writes of distinct log blocks — rewrites of a block with a
	// write still in flight queue behind it, and the durability watermark
	// only advances over the contiguous completed prefix of the log, so
	// log order and the gate-before-mutation rule are preserved. See
	// DESIGN.md §17.
	WALWriteDepth int
}

// WithDefaults fills zero fields.
func (c Config) WithDefaults() Config {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 2048
	}
	if c.InboxDepth <= 0 {
		c.InboxDepth = 4096
	}
	if c.Costs == (CostModel{}) {
		c.Costs = DefaultCosts()
	}
	if c.MaxIORetries == 0 {
		c.MaxIORetries = 3
	} else if c.MaxIORetries < 0 {
		c.MaxIORetries = 0
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 50 * time.Microsecond
	}
	if c.SpeculativePrefetch && c.SpecBudget <= 0 {
		c.SpecBudget = 16
	}
	if c.WALWriteDepth < 1 {
		c.WALWriteDepth = 1
	}
	if c.Policy == nil {
		m, err := probe.Default()
		if err != nil {
			panic("core: default probe model training failed: " + err.Error())
		}
		c.Policy = sched.NewWorkload(m, nil, 20*time.Microsecond)
	}
	return c
}
