package core

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"time"

	"github.com/patree/patree/internal/buffer"
	"github.com/patree/patree/internal/latch"
	"github.com/patree/patree/internal/metrics"
	"github.com/patree/patree/internal/nvme"
	"github.com/patree/patree/internal/sched"
	"github.com/patree/patree/internal/sim"
	"github.com/patree/patree/internal/storage"
	"github.com/patree/patree/internal/trace"
	"github.com/patree/patree/internal/wal"
)

// innerSplitMargin is how far below the hard inner capacity a node must be
// before we descend through it on the insert path: a single leaf overflow
// can cascade up to ceil(log2(leaf entries)) separators into one parent
// (multi-split of small entries around one large value), so parents keep
// at least this much slack. See DESIGN.md.
const innerSplitMargin = 6

// ErrValueTooLarge mirrors storage.ErrValueTooLarge at the operation level.
var ErrValueTooLarge = storage.ErrValueTooLarge

// ErrStopped is returned for operations admitted after Stop.
var ErrStopped = errors.New("core: tree stopped")

// ErrBacklog is returned by TryAdmit/TryAdmitBatch when the bounded
// admission ring is full — backpressure the embedder can react to.
var ErrBacklog = errors.New("core: admission ring full")

// ErrDeviceFailed is the terminal error: an I/O failed beyond the retry
// budget (or with a non-transient status), the tree entered its failed
// state, and every live and future operation completes with this error.
// The working thread keeps running so pending operations drain cleanly;
// Tree.FailCause reports the underlying device error.
var ErrDeviceFailed = errors.New("core: device failed")

// errCorruptRead marks a read whose page image failed its checksum
// (bit rot, or a torn write surfacing later). It is transient from the
// retry machinery's point of view: a re-read may return clean data.
var errCorruptRead = errors.New("core: page image failed checksum")

// transientIOErr reports whether a device error is worth retrying.
func transientIOErr(err error) bool {
	return err == nvme.ErrMedia || err == nvme.ErrTimeout || err == errCorruptRead
}

// Stats aggregates the tree-side measurements the experiments report.
type Stats struct {
	Completed       [numKinds]uint64 // by Kind
	Latency         *metrics.Histogram
	SearchLatency   *metrics.Histogram
	UpdateLatency   *metrics.Histogram
	Probes          uint64
	ProbeHits       uint64 // probes that reaped >= 1 completion
	CompletionsSeen uint64
	Yields          uint64
	YieldTime       time.Duration
	// AdmitWaits counts blocking Admit calls that found the ring full and
	// had to back off at least once (backpressure events).
	AdmitWaits uint64
	// IdleSpinTime is CPU burned busy-polling with nothing to do; it is
	// charged to the "others" category and reported separately so the
	// Figure 9 / Table II attribution can exclude it (perf-style cycle
	// attribution does not see a wait loop as scheduling work).
	IdleSpinTime time.Duration
	ReadsIssued  uint64
	WritesIssued uint64
	Splits       uint64
	// IOErrors counts device commands that completed with an error status;
	// IORetries counts the retries issued in response (bounded per op by
	// Config.MaxIORetries). JournalAppends counts redo records appended to
	// the WAL, and Checkpoints counts completed journal checkpoints.
	IOErrors       uint64
	IORetries      uint64
	JournalAppends uint64
	Checkpoints    uint64
	// Speculative-prefetch instrumentation (Config.SpeculativePrefetch;
	// see pipeline.go). SpecIssued counts speculative page reads
	// submitted; SpecHits counts operations that coalesced onto an
	// in-flight speculative read instead of issuing their own demand
	// read; SpecCancelled counts speculative completions dropped on
	// mispredict (intervening write, page already resident another way,
	// device error or checksum failure); SpecWasted counts speculative
	// reads installed with no operation waiting — prefetched warmth that
	// may still serve a later buffer hit, but earned nothing yet.
	SpecIssued    uint64
	SpecHits      uint64
	SpecCancelled uint64
	SpecWasted    uint64
	// Stages holds per-stage, per-kind latency histograms: where each
	// operation's time went between admission and completion (see
	// metrics.Stage). The conditional stages (admit-wait, latch-wait,
	// io-wait) record only operations that actually waited there, so
	// their percentiles describe the waiters, not a sea of zeros.
	Stages *metrics.StageSet
}

// TotalOps returns the number of completed index operations. Pipeline
// no-ops are excluded: they are diagnostics (and stats carriers), not
// index work.
func (s Stats) TotalOps() uint64 {
	var t uint64
	for k, c := range s.Completed {
		if Kind(k) == KindNop {
			continue
		}
		t += c
	}
	return t
}

// Tree is a PA-Tree instance bound to a device queue pair and an
// execution environment. All methods except Admit and Stop must be called
// from the working thread.
type Tree struct {
	cfg Config
	dev nvme.Device
	qp  nvme.QueuePair
	env Env

	// In-memory superblock state (persisted via the meta page on Sync).
	rootID    storage.PageID
	height    int
	numKeys   uint64
	syncEpoch uint64
	alloc     *storage.Allocator

	// Shard and device identity from the opening meta, copied into every
	// meta image the tree writes so checkpoints and root moves can never
	// demote a shard member back to an unsharded (or single-device)
	// superblock (0/0 = unsharded, 0/0 = single device).
	shardID     uint16
	shardCount  uint16
	deviceID    uint16
	deviceCount uint16

	latches *latch.Table
	ro      *buffer.ReadOnly  // strong persistence
	rw      *buffer.ReadWrite // weak persistence

	// pub, when non-nil (Config.ConcurrentReads), is the published-page
	// table that read-only goroutines traverse optimistically without
	// entering the admission pipeline. The worker is its sole writer: it
	// publishes every page image it installs in a buffer and retires
	// entries as the buffer evicts them (the table mirrors residency, so
	// its footprint is bounded by BufferPages). See published.go/reader.go.
	pub *pubTable

	// inflight tracks weak-mode write-backs between submission and
	// completion so read misses never fetch stale pages from the device.
	inflight map[storage.PageID][]byte
	bgQueue  []bgWrite // dirty evictions awaiting (re)submission

	// Redo-journal state (Config.Journal). wal appends over the region
	// [walStart, walStart+walBlocks); journalOn gates the whole pipeline
	// (walStart/walBlocks/metaWALGen are kept even when it is off, so meta
	// rewrites preserve the region description). jDurable is the log byte
	// watermark known durable; jWaiters holds ops whose records were
	// carried to the device by another op's block writes and wait for the
	// watermark to cover them. jLive counts ops inside stJournal,
	// postJournalLive the strong-mode ops still writing in place after
	// their group became durable — a checkpoint quiesces both before it
	// retires records. jFence blocks new mutations (checked before the
	// leaf is touched) while a checkpoint drains.
	wal             *wal.Log
	walStart        uint64
	walBlocks       uint64
	metaWALGen      uint32
	journalOn       bool
	jDurable        int
	jLive           int
	postJournalLive int
	jFence          bool
	jWaiters        []*Op

	// The WAL block writer: one tree-level FIFO issuing block writes in
	// log order. Per-op writers would race on the shared tail block — a
	// stale rewrite landing after a newer one truncates certified bytes,
	// and an op completing its own blocks could certify bytes an earlier
	// op still has in flight, acknowledging records a crash can still
	// revert. A flush that rewrites a block still pending here supersedes
	// it in place; an entry's certify watermark is applied to jDurable
	// only when the contiguous prefix of entries up to it has completed,
	// so the durable prefix is always contiguous.
	//
	// jwDepth (Config.WALWriteDepth) selects the writer: 1 is the classic
	// single-in-flight writer (jwBusy/jwRetries, one write at a time,
	// byte-identical schedules); >1 pipelines writes of distinct log
	// blocks up to that depth (jwInflight gauges them, retry budgets move
	// per entry) while a rewrite of a block with a write still in flight
	// queues behind it. See DESIGN.md §17.
	jwq        []*jwEntry
	jwBusy     bool
	jwRetries  int
	jwDepth    int
	jwInflight int

	// Speculative child prefetch (Config.SpeculativePrefetch; see
	// pipeline.go). specInflight tracks speculative page reads between
	// submission and completion; an op that reaches a page with a live
	// speculative read in flight parks on it as a waiter instead of
	// issuing a duplicate. Every write-submission site calls
	// specInvalidate with the page it writes, which marks any in-flight
	// speculative read of that page stale (vetoing its install) and wakes
	// its waiters onto the fresh in-memory image — so a stale device
	// image can never mask a newer write, and writes of unrelated pages
	// never cost the prefetcher anything. specKeys is the per-drain
	// scratch list of keys to predict paths for; specSeen dedupes them
	// within one pass.
	specInflight map[storage.PageID]*specRead
	specKeys     []uint64
	specSeen     map[uint64]struct{}

	// syncActive serializes sync/checkpoint pipelines; checkpointPending
	// is set while an internal checkpoint op is live so the trigger never
	// double-fires. retryq holds ops sleeping out a transient-failure
	// backoff (or a journal-gate deferral).
	syncActive        bool
	checkpointPending bool
	retryq            []retryEntry

	// failed flips once on the first unrecoverable device error; from then
	// on every live and future operation drains with ErrDeviceFailed
	// instead of wedging the working thread. failCause keeps the root
	// cause for diagnostics.
	failed    bool
	failCause error

	policy  sched.Policy
	ready   sched.ReadyQueue
	stalled []*Op // ops whose submission hit a full queue

	// inbox is the bounded MPSC admission ring; admitters counts producers
	// inside Admit between their stopped-check and their publish, so the
	// worker never exits while an admission is in flight (an op can then
	// neither be lost nor left waiting forever). wake, when non-nil,
	// interrupts a real-environment idle sleep the moment work arrives.
	inbox      *opRing
	admitters  atomic.Int64
	admitWaits atomic.Uint64
	// engineDepth gauges the operations currently inside the engine
	// (successfully handed to the ring, not yet completed); qwEWMA is a
	// worker-maintained exponentially weighted moving average (α = 1/8)
	// of completed operations' queue-wait, in nanoseconds. Both are the
	// cross-thread signals an admission-weighting governor feeds on
	// (EngineDepth / QueueWaitEWMA; see governor.go) and cost one atomic
	// each per admission/completion — they never influence the worker's
	// own scheduling, so deterministic simulation runs are unaffected.
	engineDepth atomic.Int64
	qwEWMA      atomic.Int64
	wake        func()
	// spin, when the environment provides SpinWait, busy-polls short
	// yields while I/O is outstanding instead of parking on an OS timer
	// whose resolution dwarfs device latency (see Run).
	spin    func(time.Duration)
	stopped atomic.Bool
	running bool

	// tr is Config.Tracer (nil = tracing off). All emission happens on
	// the working thread; producer-side facts arrive as timestamps on the
	// Op and are emitted retroactively at drain time.
	tr *trace.Tracer

	seq     uint64
	dbgPush uint64
	dbgPop  uint64
	liveSet map[uint64]*Op
	// keyDeps serializes in-flight point operations per exact key: the
	// map holds the TAIL of each key's chain, and a newly drained op on a
	// chained key parks behind the tail instead of entering the ready set.
	// Admission order is FIFO (the ring), but execution is pipelined —
	// without the chain a restarted insert (optimistic split retry) or an
	// I/O-suspended write can be overtaken by a later operation on the
	// same key, so a batch's Get could miss its own batch's earlier Put.
	// Range scans and syncs do not participate: they are documented as
	// unordered with respect to concurrent point writes.
	keyDeps    map[uint64]*Op
	liveOps    int
	ioBlocked  int
	charges    [5]time.Duration
	stats      Stats
	pollerLive bool
}

// bgWrite is one queued background write-back, with its retry budget and
// the earliest instant it may be (re)submitted.
type bgWrite struct {
	buffer.Dirty
	retries int
	due     sim.Time
}

// retryEntry parks an op until its backoff elapses (promoteRetries).
type retryEntry struct {
	op  *Op
	due sim.Time
}

// jwEntry is one WAL block image queued for the tree-level writer.
// certify, when non-zero, is the log byte watermark that becomes
// durable once this write (and every entry before it) completes — set
// on a flush's final block. inflight/done/retries serve the pipelined
// writer only (Config.WALWriteDepth > 1): the entry's position in its
// submit→complete lifecycle and its per-entry transient-retry budget.
type jwEntry struct {
	id       storage.PageID
	data     []byte
	certify  int
	inflight bool
	done     bool
	retries  int
}

// New creates a tree on dev using an existing on-device image described
// by meta (use Format to initialize a fresh device).
func New(dev nvme.Device, cfg Config, env Env, meta *storage.Meta) (*Tree, error) {
	cfg = cfg.WithDefaults()
	qp, err := dev.AllocQueuePair(cfg.QueueDepth)
	if err != nil {
		return nil, err
	}
	t := &Tree{
		cfg:       cfg,
		dev:       dev,
		qp:        qp,
		env:       env,
		rootID:    meta.Root,
		height:    int(meta.Height),
		numKeys:   meta.NumKeys,
		syncEpoch: meta.SyncEpoch,
		alloc:     storage.NewAllocator(meta.Watermark),
		latches:   latch.NewTable(),
		inflight:  make(map[storage.PageID][]byte),
		policy:    cfg.Policy,
		inbox:     newOpRing(cfg.InboxDepth),
		tr:        cfg.Tracer,
	}
	t.shardID = meta.ShardID
	t.shardCount = meta.ShardCount
	t.deviceID = meta.DeviceID
	t.deviceCount = meta.DeviceCount
	t.walStart = meta.WALStart
	t.walBlocks = meta.WALBlocks
	t.metaWALGen = meta.WALGen
	t.jwDepth = cfg.WALWriteDepth
	if cfg.Journal && meta.WALBlocks > 0 && meta.WALStart > 0 {
		t.wal = wal.NewLog(storage.PageSize, meta.WALBlocks)
		g := meta.WALGen
		if g < 1 {
			g = 1
		}
		t.wal.SetGeneration(g)
		t.journalOn = true
	}
	if w, ok := env.(interface{ Wake() }); ok {
		t.wake = w.Wake
	}
	if s, ok := env.(interface{ SpinWait(time.Duration) }); ok {
		t.spin = s.SpinWait
	}
	if cfg.Persistence == WeakPersistence {
		t.rw = buffer.NewReadWrite(cfg.BufferPages)
	} else {
		t.ro = buffer.NewReadOnly(cfg.BufferPages)
	}
	if cfg.ConcurrentReads && cfg.BufferPages > 0 {
		// The table mirrors buffer residency, so with no buffer there is
		// nothing to publish and the fast path would never serve: leave it
		// off and let every read take the pipeline.
		t.pub = newPubTable()
		t.pub.publishRoot(t.rootID, t.height)
		if t.rw != nil {
			t.rw.SetOnEvict(t.pub.retire)
		} else {
			t.ro.SetOnEvict(t.pub.retire)
		}
	}
	if cfg.Prioritized {
		t.ready = sched.NewPriority()
	} else {
		t.ready = sched.NewFIFO()
	}
	t.stats.Latency = metrics.NewHistogram()
	t.stats.SearchLatency = metrics.NewHistogram()
	t.stats.UpdateLatency = metrics.NewHistogram()
	t.stats.Stages = metrics.NewStageSet(numKinds)
	return t, nil
}

// Format initializes a fresh device with an empty tree (meta page + empty
// root leaf) using direct synchronous I/O, and returns the meta image.
// When the device is large enough, a WAL region is carved from its top
// and recorded in the meta page; the redo journal (Config.Journal) and
// crash recovery use it, and it costs nothing when left disabled.
func Format(dev nvme.Device) (*storage.Meta, error) {
	return FormatShard(dev, 0, 0)
}

// FormatShard is Format with a shard identity stamped into the meta
// page: shard id of count trees hash-partitioning one keyspace
// (0 of 0 = unsharded). Open-time checks compare the recorded identity
// against the requested shard layout, so a device formatted for one
// layout cannot silently open under another.
func FormatShard(dev nvme.Device, id, count uint16) (*storage.Meta, error) {
	return FormatShardDevice(dev, id, count, 0, 0)
}

// FormatShardDevice is FormatShard with a device placement stamped
// alongside the shard identity: the shard lives on device devID of
// devCount in a multi-device topology (0 of 0 = single-device layout).
// Open-time checks compare it against the offered device list, so a
// topology formatted across M devices cannot silently open with a
// different device count or order.
func FormatShardDevice(dev nvme.Device, id, count, devID, devCount uint16) (*storage.Meta, error) {
	root := storage.NewLeaf(1)
	walStart, walBlocks := walGeometry(dev.NumBlocks())
	meta := &storage.Meta{Root: 1, Height: 1, Watermark: 2,
		WALStart: walStart, WALBlocks: walBlocks,
		ShardID: id, ShardCount: count,
		DeviceID: devID, DeviceCount: devCount}
	if walBlocks > 0 {
		meta.WALGen = 1
		// Zero the region's first block so stale frames from a previous
		// life of the device can never be replayed.
		if err := syncWrite(dev, storage.PageID(walStart), make([]byte, storage.PageSize)); err != nil {
			return nil, err
		}
	}
	if err := syncWrite(dev, 1, root.Encode()); err != nil {
		return nil, err
	}
	if err := syncWrite(dev, 0, meta.Encode()); err != nil {
		return nil, err
	}
	return meta, nil
}

// ReadMeta loads the meta page from the device synchronously.
func ReadMeta(dev nvme.Device) (*storage.Meta, error) {
	buf := make([]byte, storage.PageSize)
	if err := syncRead(dev, 0, buf); err != nil {
		return nil, err
	}
	return storage.DecodeMeta(buf)
}

// syncWrite performs a blocking single-page write: submit, then poll.
// Used only for setup/recovery paths, never on the index hot path.
func syncWrite(dev nvme.Device, id storage.PageID, data []byte) error {
	return syncIO(dev, &nvme.Command{Op: nvme.OpWrite, LBA: uint64(id), Blocks: 1, Buf: data})
}

func syncRead(dev nvme.Device, id storage.PageID, buf []byte) error {
	return syncIO(dev, &nvme.Command{Op: nvme.OpRead, LBA: uint64(id), Blocks: 1, Buf: buf})
}

func syncIO(dev nvme.Device, cmd *nvme.Command) error {
	qp, err := dev.AllocQueuePair(4)
	if err != nil {
		return err
	}
	defer qp.Free()
	done := false
	var ioErr error
	cmd.Callback = func(c nvme.Completion) { done = true; ioErr = c.Err }
	if err := qp.Submit(cmd); err != nil {
		return err
	}
	// On a simulated device (or a partition/fault wrapper over one),
	// Advance drains the engine and the completion is ready immediately.
	// Wrappers over real-time devices expose a no-op Advance, so fall
	// through to wall-clock polling whenever the completion is not there.
	if sd, ok := dev.(interface{ Advance() }); ok {
		sd.Advance()
		qp.Probe(0)
		if done {
			return ioErr
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for !done {
		qp.Probe(0)
		if time.Now().After(deadline) {
			return fmt.Errorf("core: sync I/O timed out")
		}
	}
	return ioErr
}

// now returns the environment clock.
func (t *Tree) now() sim.Time { return t.env.Now() }

// charge accumulates CPU cost; chargeFlush turns the accumulation into
// actual environment work (one batch per main-loop pass keeps the
// simulated-thread handoff overhead low).
func (t *Tree) charge(cat metrics.CPUCategory, d time.Duration) { t.charges[cat] += d }

func (t *Tree) chargeFlush() {
	for cat, d := range t.charges {
		if d > 0 {
			t.env.Work(metrics.CPUCategory(cat), d)
			t.charges[cat] = 0
		}
	}
}

// Admit hands an operation to the working thread. Safe to call from any
// goroutine (real mode) or any simulation context (sim mode). When the
// bounded admission ring is full, Admit blocks until the working thread
// drains room (backpressure); use TryAdmit for a non-blocking variant.
func (t *Tree) Admit(o *Op) {
	t.admitters.Add(1)
	o.Res.Admitted = t.now()
	// enqueuedAt is (re)stamped before every push attempt, so admit-wait
	// (enqueuedAt − Admitted) measures the backpressure this op absorbed.
	// The ring's release-store publishes it with the rest of the op.
	o.enqueuedAt = o.Res.Admitted
	t.notePending(o)
	t.noteEntered(o)
	if t.stopped.Load() {
		t.admitters.Add(-1)
		t.failAdmit(o)
		return
	}
	if !t.inbox.TryPush(o) {
		t.admitWaits.Add(1)
		spins := 0
		for {
			if t.stopped.Load() {
				t.admitters.Add(-1)
				t.failAdmit(o)
				return
			}
			t.admitBackoff(&spins)
			o.enqueuedAt = t.now()
			if t.inbox.TryPush(o) {
				break
			}
		}
	}
	t.admitters.Add(-1)
	if t.wake != nil {
		t.wake()
	}
}

// TryAdmit is Admit without blocking: it returns ErrBacklog (touching
// nothing) when the ring is full, and ErrStopped (after completing o with
// that error) when the tree has stopped; nil means o was admitted.
func (t *Tree) TryAdmit(o *Op) error {
	t.admitters.Add(1)
	o.Res.Admitted = t.now()
	o.enqueuedAt = o.Res.Admitted
	t.notePending(o)
	t.noteEntered(o)
	if t.stopped.Load() {
		t.admitters.Add(-1)
		t.failAdmit(o)
		return ErrStopped
	}
	if !t.inbox.TryPush(o) {
		t.admitters.Add(-1)
		t.unnotePending(o)
		t.unnoteEntered(o)
		return ErrBacklog
	}
	t.admitters.Add(-1)
	if t.wake != nil {
		t.wake()
	}
	return nil
}

// AdmitBatch admits ops as contiguous transactions on the ring: no
// foreign operation interleaves into a chunk, so a batch is processed as
// a group in admission order. Batches larger than the ring are split into
// ring-sized chunks. Like Admit it blocks under backpressure, and fails
// every (remaining) op with ErrStopped once the tree has stopped.
func (t *Tree) AdmitBatch(ops []*Op) {
	t.admitters.Add(1)
	now := t.now()
	for _, o := range ops {
		o.Res.Admitted = now
		o.enqueuedAt = now
		t.notePending(o)
		t.noteEntered(o)
	}
	for len(ops) > 0 {
		if t.stopped.Load() {
			t.admitters.Add(-1)
			for _, o := range ops {
				t.failAdmit(o)
			}
			return
		}
		chunk := ops
		if len(chunk) > t.inbox.Cap() {
			chunk = chunk[:t.inbox.Cap()]
		}
		if !t.inbox.TryPushN(chunk) {
			t.admitWaits.Add(1)
			spins := 0
			for {
				if t.stopped.Load() {
					t.admitters.Add(-1)
					for _, o := range ops {
						t.failAdmit(o)
					}
					return
				}
				t.admitBackoff(&spins)
				retry := t.now()
				for _, o := range chunk {
					o.enqueuedAt = retry
				}
				if t.inbox.TryPushN(chunk) {
					break
				}
			}
		}
		ops = ops[len(chunk):]
	}
	t.admitters.Add(-1)
	if t.wake != nil {
		t.wake()
	}
}

// TryAdmitBatch admits ops as one contiguous ring transaction or not at
// all: it returns ErrBacklog (touching nothing) when the ring lacks room
// for the whole batch right now, and ErrStopped (after completing every
// op with that error) when the tree has stopped.
func (t *Tree) TryAdmitBatch(ops []*Op) error {
	if len(ops) > t.inbox.Cap() {
		return ErrBacklog
	}
	t.admitters.Add(1)
	now := t.now()
	for _, o := range ops {
		o.Res.Admitted = now
		o.enqueuedAt = now
		t.notePending(o)
		t.noteEntered(o)
	}
	if t.stopped.Load() {
		t.admitters.Add(-1)
		for _, o := range ops {
			t.failAdmit(o)
		}
		return ErrStopped
	}
	if !t.inbox.TryPushN(ops) {
		t.admitters.Add(-1)
		for _, o := range ops {
			t.unnotePending(o)
			t.unnoteEntered(o)
		}
		return ErrBacklog
	}
	t.admitters.Add(-1)
	if t.wake != nil {
		t.wake()
	}
	return nil
}

// Reservation is a claimed-but-unpublished span of the admission ring,
// the building block for all-or-nothing admission across several trees
// (a sharded batch commit): reserve room on every tree first, then
// publish everywhere, or abort the claims already made. Between
// TryReserve and Publish/Abort the reserving goroutine counts as an
// in-flight admitter, so the worker never exits under a live claim.
type Reservation struct {
	t   *Tree
	pos uint64
	n   int
}

// TryReserve claims room for n operations or returns ErrBacklog without
// side effects. A successful reservation (n >= 1) MUST be finished with
// Publish or Abort — an abandoned claim wedges the worker.
func (t *Tree) TryReserve(n int) (Reservation, error) {
	if n <= 0 {
		return Reservation{}, nil
	}
	if n > t.inbox.Cap() {
		return Reservation{}, ErrBacklog
	}
	t.admitters.Add(1)
	if t.stopped.Load() {
		t.admitters.Add(-1)
		return Reservation{}, ErrStopped
	}
	pos, ok := t.inbox.tryClaim(n)
	if !ok {
		t.admitters.Add(-1)
		return Reservation{}, ErrBacklog
	}
	return Reservation{t: t, pos: pos, n: n}, nil
}

// Publish fills the reservation with ops (len(ops) must equal the
// reserved count) and releases the span to the worker. If the tree
// stopped after the reservation was taken the ops are still drained by
// the worker's shutdown path — the admitters count keeps it alive.
func (r Reservation) Publish(ops []*Op) {
	if r.t == nil {
		return
	}
	if len(ops) != r.n {
		panic("core: Reservation.Publish with mismatched op count")
	}
	now := r.t.now()
	for i, o := range ops {
		o.Res.Admitted = now
		o.enqueuedAt = now
		r.t.notePending(o)
		r.t.noteEntered(o)
		r.t.inbox.publishAt(r.pos, i, o)
	}
	r.t.admitters.Add(-1)
	if r.t.wake != nil {
		r.t.wake()
	}
}

// Abort releases the reservation by publishing internal no-ops into the
// claimed slots (the span cannot be un-claimed once later producers may
// have queued behind it); the no-ops flow through the worker and free
// themselves.
func (r Reservation) Abort() {
	if r.t == nil {
		return
	}
	now := r.t.now()
	for i := 0; i < r.n; i++ {
		o := AcquireOp().InitNop()
		o.Done = func(o *Op) { o.Release() }
		o.Res.Admitted = now
		o.enqueuedAt = now
		r.t.inbox.publishAt(r.pos, i, o)
	}
	r.t.admitters.Add(-1)
	if r.t.wake != nil {
		r.t.wake()
	}
}

// failAdmit completes an operation that cannot be admitted.
func (t *Tree) failAdmit(o *Op) {
	t.unnotePending(o)
	t.unnoteEntered(o)
	o.Res.Err = ErrStopped
	o.Res.Completed = o.Res.Admitted
	if o.Done != nil {
		o.Done(o)
	}
}

// notePending registers a write op's key in the pending-key registry (the
// optimistic readers' read-your-writes fence). It MUST run before the op
// is pushed onto the ring: the worker can complete the op (and decrement)
// the instant it is visible there. Every note is balanced by exactly one
// unnote, at op teardown or on the admission failure paths; o.pendingMark
// carries the obligation.
func (t *Tree) notePending(o *Op) {
	if t.pub == nil || o.pendingMark {
		return
	}
	switch o.kind {
	case KindInsert, KindUpdate, KindDelete:
		o.pendingMark = true
		t.pub.pend.inc(o.key)
	}
}

// unnotePending releases a notePending mark, if any.
func (t *Tree) unnotePending(o *Op) {
	if o.pendingMark {
		o.pendingMark = false
		t.pub.pend.dec(o.key)
	}
}

// noteEntered counts o into the engine-depth gauge. Like notePending it
// MUST run before the op is visible on the ring (the worker can complete
// it — and decrement — the instant it is published there), and every
// mark is balanced exactly once: by completeOp, or by unnoteEntered on
// the admission-failure paths. Reservation.Abort's internal no-ops are
// never marked, so they pass through the worker without touching the
// gauge.
func (t *Tree) noteEntered(o *Op) {
	o.engMark = true
	t.engineDepth.Add(1)
}

// unnoteEntered releases a noteEntered mark, if any.
func (t *Tree) unnoteEntered(o *Op) {
	if o.engMark {
		o.engMark = false
		t.engineDepth.Add(-1)
	}
}

// EngineDepth reports how many operations are currently inside the
// engine: admitted onto the ring and not yet completed. Safe from any
// goroutine; the reading is a momentary gauge, not a fence.
func (t *Tree) EngineDepth() int { return int(t.engineDepth.Load()) }

// QueueWaitEWMA reports the exponentially weighted moving average
// (α = 1/8) of recently completed operations' ready-queue wait — the
// live congestion signal behind per-shard admission weighting. Safe
// from any goroutine.
func (t *Tree) QueueWaitEWMA() time.Duration {
	return time.Duration(t.qwEWMA.Load())
}

// admitBackoff parks a producer blocked on a full ring. Only the real
// environment can legitimately reach it: there the worker drains the ring
// concurrently. In the cooperative simulation the worker cannot run while
// the admitting callback spins, so a full ring there is a configuration
// error (raise Config.InboxDepth above the offered concurrency) and is
// reported as such rather than deadlocking silently.
func (t *Tree) admitBackoff(spins *int) {
	*spins++
	if t.wake == nil && *spins > 1<<20 {
		panic("core: admission ring full in a simulated environment; raise Config.InboxDepth")
	}
	if *spins%64 == 0 {
		time.Sleep(time.Microsecond)
	} else {
		runtime.Gosched()
	}
}

// Stop makes Run return once all admitted operations have completed.
func (t *Tree) Stop() {
	t.stopped.Store(true)
	if t.wake != nil {
		t.wake()
	}
}

// NowNanos reads the tree's clock: the same timebase its trace events
// carry. Serving-tier tracers (client, server) sample this clock so a
// merged export lines all three processes up on one axis. Safe from any
// goroutine under RealEnv (a monotonic time.Since); simulation harnesses
// call it from the scheduler thread only.
func (t *Tree) NowNanos() int64 { return int64(t.env.Now()) }

// StatsSnapshot returns a copy of the tree statistics (histograms are
// shared references; treat as read-only).
func (t *Tree) StatsSnapshot() Stats {
	st := t.stats
	st.AdmitWaits = t.admitWaits.Load()
	return st
}

// ResetStats zeroes counters and histograms (used by the harness to
// exclude warm-up).
func (t *Tree) ResetStats() {
	lat, sl, ul, stg := t.stats.Latency, t.stats.SearchLatency, t.stats.UpdateLatency, t.stats.Stages
	lat.Reset()
	sl.Reset()
	ul.Reset()
	stg.Reset()
	t.stats = Stats{Latency: lat, SearchLatency: sl, UpdateLatency: ul, Stages: stg}
	t.latches.ResetStats()
	if t.ro != nil {
		t.ro.ResetStats()
	}
	if t.rw != nil {
		t.rw.ResetStats()
	}
}

// BufferStats returns the active buffer's counters.
func (t *Tree) BufferStats() buffer.Stats {
	if t.rw != nil {
		return t.rw.Stats()
	}
	return t.ro.Stats()
}

// LatchWaits exposes latch contention (Figure 12 analysis).
func (t *Tree) LatchWaits() uint64 { return t.latches.Waits() }

// CPUSnapshot exposes the environment's live per-category CPU account
// (the Figure 9 attribution). Treat as read-only; on the simulated
// environment it reflects virtual CPU actually consumed.
func (t *Tree) CPUSnapshot() *metrics.CPUAccount { return t.env.CPU() }

// Tracer returns the configured lifecycle tracer (nil when tracing is
// off). Snapshot with Tracer().Events() from the working thread.
func (t *Tree) Tracer() *trace.Tracer { return t.tr }

// NumKeys returns the in-memory key count.
func (t *Tree) NumKeys() uint64 { return t.numKeys }

// Height returns the tree height (1 = single leaf).
func (t *Tree) Height() int { return t.height }

func (t *Tree) drainInbox() {
	drained := 0
	var drainNow sim.Time
	for {
		o, ok := t.inbox.Pop()
		if !ok {
			break
		}
		if drained == 0 {
			// One clock read covers the whole drain batch: every op in it
			// becomes ready at the same instant.
			drainNow = t.now()
		}
		drained++
		t.seq++
		o.seq = t.seq
		o.tree = t
		if o.grantFn == nil {
			o.grantFn = func() { o.tree.grantLatch(o) }
		}
		o.state = stEntry
		if o.kind == KindSync {
			o.state = stSyncRun
		}
		t.liveOps++
		if t.liveSet == nil {
			t.liveSet = make(map[uint64]*Op)
		}
		t.liveSet[o.seq] = o
		o.drainedAt = drainNow
		if t.tr != nil {
			// Producer-side events, emitted retroactively now that the op
			// is on the worker (the tracer is single-threaded by design).
			if w := o.enqueuedAt.Sub(o.Res.Admitted); w > 0 {
				t.tr.Emit(tcAdmitWait, uint16(o.kind), o.seq, 0, int64(o.Res.Admitted), int64(w))
			}
			t.tr.Emit(tcInbox, uint16(o.kind), o.seq, 0, int64(o.enqueuedAt), int64(drainNow.Sub(o.enqueuedAt)))
		}
		if t.cfg.SpeculativePrefetch && (pointKind(o.kind) || o.kind == KindRange) {
			// A range scan's start key predicts its descent path just like
			// a point key does; the sibling read-ahead takes over once the
			// scan reaches the leaf level (specScanAhead).
			t.specKeys = append(t.specKeys, o.key)
		}
		if pointKind(o.kind) {
			o.keyGated = true
			if tail, ok := t.keyDeps[o.key]; ok {
				// A point op on this key is still in flight: park behind it
				// (released by opTeardown) to preserve admission order.
				tail.keyNext = o
				t.keyDeps[o.key] = o
				continue
			}
			if t.keyDeps == nil {
				t.keyDeps = make(map[uint64]*Op)
			}
			t.keyDeps[o.key] = o
		}
		t.pushReady(o, drainNow)
	}
	if drained > 0 {
		t.policy.OnAdmit(drained, drainNow)
		if t.cfg.SpeculativePrefetch {
			t.speculate(drainNow)
		}
	}
}

// pointKind reports whether a kind addresses exactly one key and thus
// participates in the per-key dependency chain.
func pointKind(k Kind) bool {
	switch k {
	case KindSearch, KindInsert, KindUpdate, KindDelete:
		return true
	}
	return false
}

func (t *Tree) inboxEmpty() bool { return t.inbox.Empty() }

// pushReady moves an op into the ready set (idempotent). at is the
// push instant — callers already hold a fresh clock reading for their
// own accounting, so the queue-wait stamp rides along for free.
func (t *Tree) pushReady(o *Op, at sim.Time) {
	if o.inReady {
		return
	}
	o.inReady = true
	o.readyAt = at
	t.dbgPush++
	t.charge(metrics.CatSched, t.cfg.Costs.ReadyPushPop)
	t.ready.Push(sched.Entry{Seq: o.seq, HoldsWrite: o.holdsWrite, Op: o})
}

// Run executes the working-thread main loop (Algorithm 2; Algorithm 1 is
// the same loop under the AlwaysProbe policy with a FIFO ready queue).
// It returns after Stop() once every admitted operation has completed.
func (t *Tree) Run() {
	t.running = true
	costs := &t.cfg.Costs
	for {
		t.drainInbox()
		t.promoteRetries()
		progressed := false
		if e, ok := t.ready.Pop(); ok {
			op := e.Op.(*Op)
			t.dbgPop++
			op.inReady = false
			if w := t.now().Sub(op.readyAt); w > 0 {
				op.queueWait += w
				if t.tr != nil {
					t.tr.Emit(tcQueueWait, uint16(op.kind), op.seq, 0, int64(op.readyAt), int64(w))
				}
			}
			t.process(op)
			progressed = true
		}
		if t.cfg.Poller == PollerInline {
			t.charge(metrics.CatSched, t.policy.Overhead())
			if t.policy.ShouldProbe(t.now(), t.ioBlocked) {
				t.probe(t.policy)
			}
		}
		t.resubmitStalled()
		t.drainBG()
		t.jwKick()
		t.maybeCheckpoint()
		t.charge(metrics.CatSched, costs.SchedStep)
		if !progressed && t.ready.Len() == 0 && t.inboxEmpty() {
			// Exit order matters: admitters is read before re-checking the
			// ring so a producer that published between the two reads is
			// seen either via its admitters hold or via the ring itself.
			if t.stopped.Load() && t.liveOps == 0 &&
				t.admitters.Load() == 0 && t.inboxEmpty() {
				break
			}
			if y := t.policy.YieldFor(t.now(), t.ioBlocked); y > 0 {
				t.chargeFlush()
				t.stats.Yields++
				t.stats.YieldTime += y
				if t.tr != nil {
					t.tr.Emit(tcYield, classNone, 0, uint64(t.ioBlocked), int64(t.now()), int64(y))
				}
				if t.ioBlocked > 0 && t.spin != nil {
					// Completions are imminent (device latency is well
					// under a timer tick): poll instead of parking, or the
					// OS timer becomes the I/O completion path. This is
					// the polled-mode behaviour the paper's design
					// assumes; a true idle (no I/O outstanding) still
					// parks below and is woken by admission.
					t.spin(y)
				} else {
					t.env.Sleep(y)
				}
			} else {
				// Busy-poll: burn a spin quantum so virtual time advances
				// (this is the CPU waste Figure 13 quantifies).
				t.charge(metrics.CatOther, costs.IdleSpin)
				t.stats.IdleSpinTime += costs.IdleSpin
			}
		}
		t.chargeFlush()
	}
	t.running = false
	t.chargeFlush()
	// Defensive sweep: the admitters protocol means no op should remain,
	// but anything that somehow does must fail rather than strand a
	// waiter.
	for {
		o, ok := t.inbox.Pop()
		if !ok {
			break
		}
		t.failAdmit(o)
	}
}

// PollerPolicy returns the probe policy a dedicated polling thread should
// run: PAD-Tree spins (always probe), PAD+-Tree shares the tree's
// workload-aware policy (which is fed every submission either way).
func (t *Tree) PollerPolicy() sched.Policy {
	if t.cfg.Poller == PollerDedicatedModel {
		return t.policy
	}
	return sched.NewAlwaysProbe()
}

// RunPoller executes a dedicated polling thread (PAD / PAD+, Figure 11).
// Call in its own environment; it exits when the main Run loop exits.
func (t *Tree) RunPoller(env Env, policy sched.Policy) {
	t.pollerLive = true
	costs := &t.cfg.Costs
	for t.running || !t.stopped.Load() {
		env.Work(metrics.CatSched, policy.Overhead())
		if policy.ShouldProbe(env.Now(), t.ioBlocked) {
			t.probePoller(env, policy)
		} else if t.cfg.Poller == PollerDedicatedModel {
			// Model-gated poller sleeps when nothing is predicted,
			// keeping its CPU footprint near zero (PAD+).
			env.Sleep(5 * time.Microsecond)
		} else {
			env.Work(metrics.CatSched, costs.IdleSpin)
		}
	}
	t.pollerLive = false
}

// probe polls the completion queue from the working thread.
func (t *Tree) probe(policy sched.Policy) int {
	t.charge(metrics.CatNVMe, t.cfg.Costs.ProbeCall)
	n := t.qp.Probe(t.cfg.MaxProbeBatch)
	t.charge(metrics.CatNVMe, time.Duration(n)*t.cfg.Costs.ProbePerCQE)
	now := t.now()
	policy.OnProbe(now)
	t.stats.Probes++
	if n > 0 {
		t.stats.ProbeHits++
		t.stats.CompletionsSeen += uint64(n)
		// Only hitting probes are traced: misses can fire every scheduler
		// step and would flush the ring without adding information (the
		// Probes counter keeps the totals).
		if t.tr != nil {
			t.tr.Emit(tcProbe, classNone, 0, uint64(n), int64(now), trace.Instant)
		}
	}
	return n
}

// probePoller polls from a dedicated thread, paying the cross-thread
// handoff penalty per completion.
func (t *Tree) probePoller(env Env, policy sched.Policy) int {
	env.Work(metrics.CatNVMe, t.cfg.Costs.ProbeCall)
	n := t.qp.Probe(t.cfg.MaxProbeBatch)
	if n > 0 {
		env.Work(metrics.CatNVMe, time.Duration(n)*t.cfg.Costs.ProbePerCQE)
		env.Work(metrics.CatSync, time.Duration(n)*t.cfg.Costs.CrossThreadHandoff)
	}
	policy.OnProbe(env.Now())
	t.stats.Probes++
	if n > 0 {
		t.stats.ProbeHits++
		t.stats.CompletionsSeen += uint64(n)
	}
	return n
}

// resubmitStalled retries operations whose Submit hit a full queue.
func (t *Tree) resubmitStalled() {
	if len(t.stalled) == 0 {
		return
	}
	batch := t.stalled
	t.stalled = nil
	now := t.now()
	for _, o := range batch {
		t.pushReady(o, now)
	}
}

// ─── Operation processing ───────────────────────────────────────────────

// DebugTraceSeq enables transition tracing for one op seq (diagnostics).
var DebugTraceSeq uint64

// process runs o's transitions until it leaves the ready set (§III-A:
// process(c) is the maximal sequence of transitions until the operation
// completes or enters a waiting state).
func (t *Tree) process(o *Op) {
	for {
		if DebugTraceSeq != 0 && o.seq == DebugTraceSeq {
			fmt.Printf("TRACE op%d state=%d cur=%d depth=%d held=%v err=%v\n", o.seq, o.state, o.cur, o.depth, o.held, o.pendingErr)
		}
		if t.failed && o.state != stDone {
			// Terminal device failure: fail the operation as soon as it has
			// no commands in flight. Callbacks for outstanding commands keep
			// rescheduling it here until it has drained, so nothing is ever
			// freed back to the pool with a completion still pointing at it.
			if o.syncOutstanding == 0 {
				t.failOp(o, ErrDeviceFailed)
			}
			return
		}
		if o.pendingErr != nil && o.state != stSyncRun {
			t.failOp(o, o.pendingErr)
			return
		}
		switch o.state {
		case stEntry:
			if o.kind == KindNop {
				// Pipeline no-op: complete without touching the index.
				t.finishOp(o)
				return
			}
			o.cur = t.rootID
			o.depth = 0
			o.prevNode = nil
			o.state = stChildGranted
			if !t.acquireLatch(o, o.cur, t.latchModeFor(o, t.height-1)) {
				return // latch-blocked; grant moves us on
			}

		case stChildGranted:
			if o.depth == 0 && o.cur != t.rootID {
				// The root split while we were queued: restart from the
				// real root (entry-latch recheck; see package docs).
				t.releaseLatch(o, o.cur)
				o.state = stEntry
				continue
			}
			// Searches, scans, deletes and optimistic updates release the
			// previous node as soon as the child latch is granted;
			// pessimistic updates keep it until the child is known not to
			// split.
			if !t.pessimisticCoupling(o) {
				t.releaseAllExcept(o, o.cur)
				o.prevNode = nil
			}
			o.state = stReadNode

		case stReadNode:
			data, ok := t.lookupPage(o.cur)
			if !ok {
				if o.ioData != nil && o.ioFor == o.cur {
					data = o.ioData
				} else {
					o.ioData = nil
					if sr, ok := t.specInflight[o.cur]; ok && !sr.stale && !t.failed {
						// A live speculative read of this page is already in
						// flight: coalesce onto it instead of issuing a
						// duplicate (pipeline.go wakes us when it lands —
						// or falls back to a demand read on mispredict).
						sr.waiters = append(sr.waiters, specWaiter{op: o, since: t.now()})
						t.stats.SpecHits++
						return // I/O-blocked on the speculative read
					}
					if !t.submitRead(o) {
						return // stalled or waiting
					}
					return // I/O-blocked
				}
			}
			o.ioData = nil
			if o.kind == KindSearch {
				// Point lookups never mutate, so they read the sealed page
				// image directly instead of materializing a Node — the
				// binary search runs over the encoded slot array and only
				// the matched value is copied out. Same page validation,
				// same latch protocol, same CPU charge; zero decode
				// allocations on a buffer hit.
				if t.searchStep(o, data) {
					return
				}
				continue
			}
			node, err := storage.DecodeNode(o.cur, data)
			if err != nil {
				t.failOp(o, err)
				return
			}
			t.charge(metrics.CatRealWork, t.cfg.Costs.NodeVisit)
			o.curNode = node
			o.state = stProcess

		case stProcess:
			if done := t.processNode(o); done {
				return
			}

		case stWriteNext:
			if o.wIdx >= len(o.writes) {
				t.finishOp(o)
				return
			}
			if !t.submitOpWrite(o) {
				return // stalled or waiting
			}
			return // I/O-blocked until this write completes

		case stJournal:
			if t.runJournal(o) {
				return
			}

		case stSyncRun:
			if t.journalOn {
				if t.runSyncJournaled(o) {
					return
				}
			} else if t.runSync(o) {
				return
			}

		case stDone:
			return

		default:
			panic(fmt.Sprintf("core: bad op state %d", o.state))
		}
	}
}

// searchStep advances a point search one level using the raw page image
// (see the KindSearch branch in process). Returns true when the op left
// the ready set (completed, failed, or latch-blocked on the child).
func (t *Tree) searchStep(o *Op, data []byte) bool {
	step, err := storage.SearchPage(data, o.key)
	if err != nil {
		t.failOp(o, err)
		return true
	}
	t.charge(metrics.CatRealWork, t.cfg.Costs.NodeVisit)
	if step.Leaf {
		o.Res.Found = step.Found
		o.Res.Value = step.Value
		t.finishOp(o)
		return true
	}
	o.cur = step.Child
	o.depth++
	o.state = stChildGranted
	if !t.acquireLatch(o, step.Child, latch.Shared) {
		return true // latch-blocked
	}
	return false
}

// processNode executes the index logic on o.curNode. Returns true when
// the op left the ready set (done or waiting).
func (t *Tree) processNode(o *Op) bool {
	node := o.curNode
	isUpd := o.kind == KindInsert || o.kind == KindUpdate

	if isUpd && node.IsLeaf() && !o.pessimistic && t.needsSplit(o, node) {
		// Optimistic descent found a leaf that must split: restart with
		// exclusive coupling (rare; see Op.pessimistic).
		if o.kind == KindUpdate {
			if _, found := node.SearchLeaf(o.key); !found {
				o.Res.Found = false
				t.finishOp(o)
				return true
			}
		}
		o.pessimistic = true
		t.releaseAll(o)
		o.state = stEntry
		return false
	}

	if isUpd && o.pessimistic && t.needsSplit(o, node) {
		if o.kind == KindUpdate {
			// Confirm the key exists before splitting on its behalf.
			if node.IsLeaf() {
				if _, found := node.SearchLeaf(o.key); !found {
					o.Res.Found = false
					t.finishOp(o)
					return true
				}
			}
		}
		t.splitCurrent(o)
		// Re-process the (possibly new) current node.
		return false
	}

	if node.IsLeaf() {
		return t.leafAction(o)
	}

	// Inner node: the child to follow.
	if isUpd && o.pessimistic {
		// This node is split-safe: ancestors not pinned by modifications
		// can be released (latch coupling for updates, §III-B).
		t.releaseSafeAncestors(o)
	}
	idx := node.ChildIndex(o.key)
	child := node.Children[idx]
	if t.cfg.SpeculativePrefetch && o.kind == KindRange {
		t.specScanAhead(o, node, idx)
	}
	o.prevNode = node
	o.cur = child
	o.depth++
	o.state = stChildGranted
	if !t.acquireLatch(o, child, t.latchModeFor(o, int(node.Level)-1)) {
		return true // latch-blocked
	}
	return false
}

// latchModeFor returns the latch mode for a node at the given level on
// o's traversal: searches take shared latches everywhere; optimistic
// updates take shared latches on inner nodes and exclusive only on the
// leaf; pessimistic updates take exclusive everywhere.
func (t *Tree) latchModeFor(o *Op, level int) latch.Mode {
	if o.kind == KindSearch || o.kind == KindRange {
		return latch.Shared
	}
	if o.pessimistic || level <= 0 {
		return latch.Exclusive
	}
	return latch.Shared
}

// pessimisticCoupling reports whether o keeps ancestors latched across
// child acquisition.
func (t *Tree) pessimisticCoupling(o *Op) bool {
	return (o.kind == KindInsert || o.kind == KindUpdate) && o.pessimistic
}

// leafAction applies o to the leaf in o.curNode (which fits the change;
// splits were handled before entering here).
func (t *Tree) leafAction(o *Op) bool {
	node := o.curNode
	costs := &t.cfg.Costs
	switch o.kind {
	case KindSearch:
		if i, found := node.SearchLeaf(o.key); found {
			o.Res.Found = true
			o.Res.Value = node.Vals[i]
		}
		t.finishOp(o)
		return true

	case KindRange:
		i, _ := node.SearchLeaf(o.key)
		for ; i < len(node.Keys); i++ {
			if node.Keys[i] > o.endKey {
				t.finishOp(o)
				return true
			}
			o.Res.Pairs = append(o.Res.Pairs, KV{Key: node.Keys[i], Value: node.Vals[i]})
			if o.limit > 0 && len(o.Res.Pairs) >= o.limit {
				t.finishOp(o)
				return true
			}
		}
		if node.Next == storage.NilPage {
			t.finishOp(o)
			return true
		}
		// Continue into the right sibling with latch coupling; every key
		// there exceeds everything in this leaf, so scanning resumes from
		// the sibling's first slot.
		o.key = 0
		o.prevNode = node
		o.cur = node.Next
		o.depth++
		o.state = stChildGranted
		if !t.acquireLatch(o, o.cur, o.mode) {
			return true
		}
		return false

	case KindInsert, KindUpdate:
		if len(o.value) > storage.MaxValueSize {
			t.failOp(o, ErrValueTooLarge)
			return true
		}
		if !t.journalGate(o) {
			return true // deferred before mutating; re-runs via retryq
		}
		i, found := node.SearchLeaf(o.key)
		if o.kind == KindUpdate && !found {
			o.Res.Found = false
			t.finishOp(o)
			return true
		}
		_ = i
		replaced := node.InsertLeaf(o.key, o.value)
		o.Res.Found = replaced
		if !replaced {
			t.numKeys++
		}
		t.charge(metrics.CatRealWork, costs.LeafMutate)
		t.markModified(o, node)
		return t.beginWriteback(o)

	case KindDelete:
		i, found := node.SearchLeaf(o.key)
		if !found {
			t.finishOp(o)
			return true
		}
		if !t.journalGate(o) {
			return true // deferred before mutating; re-runs via retryq
		}
		node.DeleteLeafAt(i)
		o.Res.Found = true
		t.numKeys--
		t.charge(metrics.CatRealWork, costs.LeafMutate)
		t.markModified(o, node)
		return t.beginWriteback(o)

	default:
		panic("core: unexpected kind in leafAction: " + o.kind.String())
	}
}

// needsSplit decides whether the current node must be split before the
// insert/update proceeds (top-down preemptive splitting; see DESIGN.md).
func (t *Tree) needsSplit(o *Op, node *storage.Node) bool {
	if !node.IsLeaf() {
		return node.NumKeys() >= storage.InnerMaxKeys-innerSplitMargin
	}
	if len(o.value) > storage.MaxValueSize {
		return false // leafAction will fail the op cleanly
	}
	if i, found := node.SearchLeaf(o.key); found {
		return !node.LeafFitsReplace(i, len(o.value))
	}
	return !node.LeafFits(len(o.value))
}

// splitCurrent splits o.curNode (held X), inserting separators into the
// held parent (creating a new root when the current node is the root).
// For leaves it loops byte-balanced splits until the incoming value fits
// the half covering the key. All modified nodes stay latched and are
// queued for write-back.
func (t *Tree) splitCurrent(o *Op) {
	node := o.curNode
	parent := o.prevNode
	costs := &t.cfg.Costs

	if parent == nil {
		// Root split: hoist a new root above the current node.
		newRootID := t.alloc.Alloc()
		newRoot := storage.NewInner(newRootID, node.Level+1)
		newRoot.Children = []storage.PageID{node.ID}
		if !t.acquireLatch(o, newRootID, latch.Exclusive) {
			panic("core: fresh root latch contended")
		}
		t.markModified(o, newRoot)
		hoisted, newHeight := newRootID, t.height+1
		prevCommit := o.commit
		o.commit = func() {
			if prevCommit != nil {
				prevCommit()
			}
			t.rootID = hoisted
			t.height = newHeight
		}
		parent = newRoot
		o.prevNode = newRoot
	}

	if !node.IsLeaf() {
		rightID := t.alloc.Alloc()
		sep, right := node.SplitInner(rightID)
		if !t.acquireLatch(o, rightID, latch.Exclusive) {
			panic("core: fresh split node latch contended")
		}
		if t.pub != nil {
			o.pubSplits = append(o.pubSplits, pubSplit{left: node.ID, right: rightID, sep: sep})
		}
		parent.InsertInner(sep, rightID)
		t.charge(metrics.CatRealWork, costs.Split)
		t.stats.Splits++
		t.markModified(o, node)
		t.markModified(o, right)
		t.markModified(o, parent)
		if o.key >= sep {
			o.curNode = right
			o.cur = rightID
		}
		return
	}

	// Leaf: split until the half covering the key fits the value.
	target := node
	t.markModified(o, parent)
	for {
		var fits bool
		if i, found := target.SearchLeaf(o.key); found {
			fits = target.LeafFitsReplace(i, len(o.value))
		} else {
			fits = target.LeafFits(len(o.value))
		}
		if fits {
			break
		}
		if target.NumKeys() < 2 {
			// By the MaxValueSize bound a single-entry leaf always fits
			// one more maximal value; reaching here is a logic bug.
			panic("core: unsplittable leaf cannot fit value")
		}
		rightID := t.alloc.Alloc()
		sep, right := target.SplitLeaf(rightID)
		if !t.acquireLatch(o, rightID, latch.Exclusive) {
			panic("core: fresh split leaf latch contended")
		}
		if t.pub != nil {
			o.pubSplits = append(o.pubSplits, pubSplit{left: target.ID, right: rightID, sep: sep})
		}
		parent.InsertInner(sep, rightID)
		t.charge(metrics.CatRealWork, costs.Split)
		t.stats.Splits++
		t.markModified(o, target)
		t.markModified(o, right)
		if o.key >= sep {
			target = right
		}
	}
	if parent.NumKeys() > storage.InnerMaxKeys {
		panic("core: parent overflow after leaf multi-split")
	}
	o.curNode = target
	o.cur = target.ID
}

// markModified records node for write-back (ordered children-first at
// queue-build time) and pins the op as a write-latch holder for the
// prioritized scheduler.
func (t *Tree) markModified(o *Op, node *storage.Node) {
	for _, m := range o.modified {
		if m == node {
			return
		}
	}
	o.modified = append(o.modified, node)
	o.holdsWrite = true
}

// releaseSafeAncestors drops latches on every held node above the current
// one that was not modified (modified pages stay latched until their
// writes complete so no reader can observe in-flight data).
func (t *Tree) releaseSafeAncestors(o *Op) {
	if len(o.held) <= 1 {
		return
	}
	kept := o.held[:0]
	for _, h := range o.held {
		if h.id == o.cur || o.isModified(h.id) {
			kept = append(kept, h)
			continue
		}
		t.charge(metrics.CatSync, t.cfg.Costs.LatchOp)
		t.latches.Release(h.id, h.mode)
	}
	o.held = kept
}

func (o *Op) isModified(id storage.PageID) bool {
	for _, m := range o.modified {
		if m.ID == id {
			return true
		}
	}
	return false
}

// beginWriteback finishes an update operation: strong mode queues one
// write per modified page (leaves before parents, meta last) and moves
// the op to the write pipeline; weak mode stores the pages into the
// read-write buffer and completes immediately, scheduling evicted victims
// in the background (§III-C). The return value follows the processNode
// convention: true iff the op left the ready set.
func (t *Tree) beginWriteback(o *Op) bool {
	if t.cfg.Persistence == WeakPersistence {
		for _, n := range o.modified {
			img := n.Encode()
			t.bufferWrite(n.ID, img)
			if t.pub != nil {
				// Captured for publication at finishOp: the table is updated
				// only when the whole op's page group is final, so readers
				// never see a half-applied split.
				o.pubImgs = append(o.pubImgs, writeReq{id: n.ID, data: img})
			}
		}
		if t.journalOn {
			// Acknowledge only once the redo group is durable: the buffered
			// pages may not reach the device until much later, but the WAL
			// can replay them after a crash.
			o.state = stJournal
			return false
		}
		t.finishOp(o)
		return true
	}
	// Strong: order children-first so a parent never points to an
	// unwritten child on the device.
	mods := append([]*storage.Node(nil), o.modified...)
	for i := 0; i < len(mods); i++ {
		for j := i + 1; j < len(mods); j++ {
			if mods[j].Level < mods[i].Level {
				mods[i], mods[j] = mods[j], mods[i]
			}
		}
	}
	for _, n := range mods {
		o.writes = append(o.writes, writeReq{id: n.ID, data: n.Encode()})
	}
	if o.commit != nil {
		// Root changed: persist the new meta image after everything else.
		meta := t.pendingMeta(o)
		o.writes = append(o.writes, writeReq{id: 0, data: meta.Encode()})
	}
	if t.journalOn {
		// Journal-first: the redo group becomes durable before the in-place
		// writes start, so a crash tearing the in-place update is healed by
		// replay.
		o.state = stJournal
		return false
	}
	o.state = stWriteNext
	return false // continue in process(): stWriteNext issues the first write
}

// pendingMeta builds the meta image as it must look after o commits.
func (t *Tree) pendingMeta(o *Op) *storage.Meta {
	// The commit closure updates rootID/height; peek at the new values by
	// inspecting the newest modified root-level node.
	root := t.rootID
	height := t.height
	for _, n := range o.modified {
		if int(n.Level)+1 > height {
			height = int(n.Level) + 1
			root = n.ID
		}
	}
	return &storage.Meta{
		Root:        root,
		Height:      uint8(height),
		Watermark:   t.alloc.Watermark(),
		NumKeys:     t.numKeys,
		SyncEpoch:   t.syncEpoch,
		WALStart:    t.walStart,
		WALBlocks:   t.walBlocks,
		WALGen:      t.walGenCurrent(),
		ShardID:     t.shardID,
		ShardCount:  t.shardCount,
		DeviceID:    t.deviceID,
		DeviceCount: t.deviceCount,
	}
}

// currentMeta builds the meta image for the tree's present in-memory
// state, preserving the journal region description.
func (t *Tree) currentMeta() *storage.Meta {
	return &storage.Meta{
		Root:        t.rootID,
		Height:      uint8(t.height),
		Watermark:   t.alloc.Watermark(),
		NumKeys:     t.numKeys,
		SyncEpoch:   t.syncEpoch,
		WALStart:    t.walStart,
		WALBlocks:   t.walBlocks,
		WALGen:      t.walGenCurrent(),
		ShardID:     t.shardID,
		ShardCount:  t.shardCount,
		DeviceID:    t.deviceID,
		DeviceCount: t.deviceCount,
	}
}

// walGenCurrent returns the journal generation a meta rewrite must carry.
func (t *Tree) walGenCurrent() uint32 {
	if t.wal != nil {
		return t.wal.Generation()
	}
	return t.metaWALGen
}

// ─── Page access ────────────────────────────────────────────────────────

// lookupPage consults the buffers (and, in weak mode, the in-flight
// write-back table) for the page image of id.
func (t *Tree) lookupPage(id storage.PageID) ([]byte, bool) {
	if t.rw != nil {
		if data, ok := t.rw.Get(id); ok {
			return data, true
		}
		if data, ok := t.inflight[id]; ok {
			// Refill the buffer: content is identical to what is being
			// persisted right now.
			if victim, ev := t.rw.FillOnRead(id, data); ev {
				t.queueBG(victim)
			}
			if t.pub != nil {
				t.pub.publishFill(id, data)
			}
			return data, true
		}
		return nil, false
	}
	if data, ok := t.ro.Get(id); ok {
		return data, true
	}
	return nil, false
}

// bufferWrite stores a weak-mode page update and schedules any evicted
// dirty victim for background write-back.
func (t *Tree) bufferWrite(id storage.PageID, data []byte) {
	t.specInvalidate(id)
	if victim, ev := t.rw.Write(id, data); ev {
		t.queueBG(victim)
	}
	// With buffering disabled (capacity 0) the write must still reach the
	// device: treat it as its own write-back.
	if t.rw.Len() == 0 {
		t.queueBG(buffer.Dirty{ID: id, Data: data, Epoch: 0})
	}
}

func (t *Tree) queueBG(d buffer.Dirty) {
	if t.failed {
		return // terminal state: durability is already lost, drop quietly
	}
	// Coalesce with a queued-but-unsubmitted write of the same page: the
	// newest image supersedes (same-page submission order must hold, or a
	// retried stale image could overwrite fresher data).
	for i := range t.bgQueue {
		if t.bgQueue[i].ID == d.ID {
			t.bgQueue[i].Dirty = d
			t.bgQueue[i].retries = 0
			t.bgQueue[i].due = 0
			t.drainBG()
			return
		}
	}
	t.bgQueue = append(t.bgQueue, bgWrite{Dirty: d})
	t.drainBG()
}

// drainBG submits queued background write-backs whose backoff has
// elapsed, leaving the rest queued when the submission queue is full.
func (t *Tree) drainBG() {
	if len(t.bgQueue) == 0 {
		return
	}
	if t.failed {
		t.bgQueue = t.bgQueue[:0]
		return
	}
	now := t.now()
	rest := t.bgQueue[:0]
	for i := 0; i < len(t.bgQueue); i++ {
		w := t.bgQueue[i]
		if w.due > now {
			rest = append(rest, w)
			continue
		}
		if !t.submitBG(w) {
			// Submission queue full: keep this and everything after it.
			rest = append(rest, t.bgQueue[i:]...)
			break
		}
	}
	t.bgQueue = rest
}

// submitBG issues one background write-back. Returns false when the
// submission queue is full (the entry stays queued). A transient error
// re-queues the write with backoff until its retry budget runs out;
// exhaustion or a non-transient status fails the device.
func (t *Tree) submitBG(w bgWrite) bool {
	data := w.Data
	id := w.ID
	epoch := w.Epoch
	retries := w.retries
	t.specInvalidate(id)
	t.inflight[id] = data
	submitted := t.now()
	cmd := &nvme.Command{Op: nvme.OpWrite, LBA: uint64(id), Blocks: 1, Buf: data}
	cmd.Callback = func(c nvme.Completion) {
		t.ioBlocked--
		now := t.now()
		t.policy.OnDetected(nvme.OpWrite, submitted, now)
		if t.tr != nil {
			t.tr.Emit(tcIOWrite, classNone, 0, uint64(id), int64(submitted), int64(now.Sub(submitted)))
		}
		if cur, ok := t.inflight[id]; ok && &cur[0] == &data[0] {
			delete(t.inflight, id)
		}
		if c.Err != nil {
			t.stats.IOErrors++
			if !t.failed && transientIOErr(c.Err) && retries < t.cfg.MaxIORetries {
				t.stats.IORetries++
				t.requeueBG(bgWrite{
					Dirty:   buffer.Dirty{ID: id, Data: data, Epoch: epoch},
					retries: retries + 1,
					due:     now.Add(t.retryDelay(retries + 1)),
				})
			} else {
				t.enterFailed(c.Err)
			}
			return
		}
		if epoch != 0 {
			t.rw.MarkClean(id, epoch)
		}
	}
	t.charge(metrics.CatNVMe, t.cfg.Costs.IOSubmit)
	if err := t.qp.Submit(cmd); err != nil {
		delete(t.inflight, id)
		return false // queue full; retried by the main loop's drainBG
	}
	t.policy.OnSubmit(nvme.OpWrite, submitted)
	t.ioBlocked++
	t.stats.WritesIssued++
	return true
}

// requeueBG re-queues a failed background write for retry — unless a
// newer image of the same page is already queued, which supersedes it.
func (t *Tree) requeueBG(w bgWrite) {
	for i := range t.bgQueue {
		if t.bgQueue[i].ID == w.ID {
			return
		}
	}
	t.bgQueue = append(t.bgQueue, w)
}

// submitRead issues the read for o.cur. Returns false if the op stalled
// on a full queue (it re-queues via the stalled list).
func (t *Tree) submitRead(o *Op) bool {
	buf := make([]byte, storage.PageSize)
	submitted := t.now()
	id := o.cur
	cmd := &nvme.Command{Op: nvme.OpRead, LBA: uint64(id), Blocks: 1, Buf: buf}
	cmd.Callback = func(c nvme.Completion) {
		t.ioBlocked--
		now := t.now()
		t.policy.OnDetected(nvme.OpRead, submitted, now)
		o.ioWait += now.Sub(submitted)
		if t.tr != nil {
			t.tr.Emit(tcIORead, uint16(o.kind), o.seq, uint64(id), int64(submitted), int64(now.Sub(submitted)))
		}
		err := c.Err
		if err == nil && !storage.VerifyPage(buf) {
			// Bit rot or a torn write: never admit a checksum-failed image
			// into the buffers. A re-read may heal transient corruption.
			err = errCorruptRead
		}
		if err != nil {
			if t.handleOpIOError(o, err) {
				return // parked in retryq; promoted after the backoff
			}
		} else {
			o.ioData = buf
			o.ioFor = id
			t.fillOnRead(id, buf)
		}
		t.pushReady(o, now)
	}
	t.charge(metrics.CatNVMe, t.cfg.Costs.IOSubmit)
	if err := t.qp.Submit(cmd); err != nil {
		t.stalled = append(t.stalled, o)
		return false
	}
	t.policy.OnSubmit(nvme.OpRead, submitted)
	t.ioBlocked++
	t.stats.ReadsIssued++
	return true
}

func (t *Tree) fillOnRead(id storage.PageID, data []byte) {
	if t.rw != nil {
		if victim, ev := t.rw.FillOnRead(id, data); ev {
			t.queueBG(victim)
		}
	} else {
		t.ro.FillOnRead(id, data)
	}
	if t.pub != nil {
		// Publish what entered the buffer: a fill carries no key-range
		// bound, so publishFill preserves any bound the frame already had
		// (page ranges only change at splits, which publish via finishOp).
		t.pub.publishFill(id, data)
	}
}

// submitOpWrite issues o.writes[o.wIdx] (strong mode). On completion the
// page enters the read-only buffer (§III-C's fill-on-write-complete rule)
// and the op advances to the next write.
func (t *Tree) submitOpWrite(o *Op) bool {
	w := o.writes[o.wIdx]
	t.specInvalidate(w.id)
	submitted := t.now()
	cmd := &nvme.Command{Op: nvme.OpWrite, LBA: uint64(w.id), Blocks: 1, Buf: w.data}
	cmd.Callback = func(c nvme.Completion) {
		t.ioBlocked--
		now := t.now()
		t.policy.OnDetected(nvme.OpWrite, submitted, now)
		o.ioWait += now.Sub(submitted)
		if t.tr != nil {
			t.tr.Emit(tcIOWrite, uint16(o.kind), o.seq, uint64(w.id), int64(submitted), int64(now.Sub(submitted)))
		}
		if c.Err != nil {
			if t.handleOpIOError(o, c.Err) {
				return // parked in retryq; stWriteNext resubmits w.id
			}
		} else {
			if w.id != 0 {
				t.ro.FillOnWriteComplete(w.id, w.data)
			}
			o.wIdx++
		}
		t.pushReady(o, now)
	}
	t.charge(metrics.CatNVMe, t.cfg.Costs.IOSubmit)
	if err := t.qp.Submit(cmd); err != nil {
		t.stalled = append(t.stalled, o)
		return false
	}
	t.policy.OnSubmit(nvme.OpWrite, submitted)
	t.ioBlocked++
	t.stats.WritesIssued++
	return true
}

// ─── Fault handling: retries and the terminal failed state ─────────────

// handleOpIOError classifies an errored command on o's critical path.
// A transient status within the op's retry budget schedules a delayed
// re-run of the op's current state (which naturally resubmits the same
// I/O) and returns true; otherwise the tree enters the failed state,
// o.pendingErr is set, and false is returned — the caller pushes the op
// so process() can drain it.
func (t *Tree) handleOpIOError(o *Op, err error) bool {
	t.stats.IOErrors++
	if t.failed || !transientIOErr(err) || o.ioRetries >= t.cfg.MaxIORetries {
		t.enterFailed(err)
		o.pendingErr = ErrDeviceFailed
		return false
	}
	o.ioRetries++
	t.stats.IORetries++
	t.scheduleRetry(o, t.retryDelay(o.ioRetries))
	return true
}

// retryDelay is the exponential backoff before the attempt-th retry.
func (t *Tree) retryDelay(attempt int) time.Duration {
	d := t.cfg.RetryBackoff
	for i := 1; i < attempt && d < time.Second; i++ {
		d *= 2
	}
	return d
}

// scheduleRetry parks o until its backoff elapses. Only ops with no
// other pending wake-up source (no outstanding commands, no latch
// request) may be parked here, so a promotion can never double-schedule
// an op that moved on in the meantime.
func (t *Tree) scheduleRetry(o *Op, d time.Duration) {
	t.retryq = append(t.retryq, retryEntry{op: o, due: t.now().Add(d)})
}

// promoteRetries pushes parked ops whose backoff elapsed back into the
// ready set. In the failed state every entry is promoted immediately so
// the pipeline drains without waiting out backoffs.
func (t *Tree) promoteRetries() {
	if len(t.retryq) == 0 {
		return
	}
	now := t.now()
	rest := t.retryq[:0]
	for _, e := range t.retryq {
		if t.failed || e.due <= now {
			t.pushReady(e.op, now)
		} else {
			rest = append(rest, e)
		}
	}
	t.retryq = rest
}

// enterFailed flips the tree into its terminal failed state: background
// write-backs are dropped and every parked operation is woken so it
// drains with ErrDeviceFailed. The working thread itself stays healthy —
// Run keeps going until every live op has completed, so no waiter is
// stranded and Close still works.
func (t *Tree) enterFailed(cause error) {
	if t.failed {
		return
	}
	t.failed = true
	t.failCause = cause
	t.bgQueue = t.bgQueue[:0]
	if t.pub != nil {
		// Withdraw the fast path: optimistic reads must not keep serving a
		// frozen snapshot of a failed tree. Every read now falls back to
		// the pipeline, which drains it with ErrDeviceFailed.
		t.pub.withdrawRoot()
	}
	t.promoteRetries()
	t.promoteJWaiters()
	for _, sr := range t.specInflight {
		// Wake ops parked on speculative reads: the failed drain at the
		// top of process() handles them, and the reads' own completions
		// will find no waiters left.
		t.promoteSpecWaiters(sr, t.now())
	}
}

// Failed reports whether the tree is in the terminal failed state.
// Worker-thread only.
func (t *Tree) Failed() bool { return t.failed }

// FailCause returns the device error that moved the tree into the failed
// state (nil while healthy). Worker-thread only.
func (t *Tree) FailCause() error { return t.failCause }

// ─── Redo journal (Config.Journal) ──────────────────────────────────────

// journalRecordBytes is the payload size of one redo record:
// opSeq(8) idx(1) cnt(1) pageID(8) page image(512).
const journalRecordBytes = 18 + storage.PageSize

// maxJournalGroup bounds the records one operation can journal: a leaf
// multi-split chain plus the parent path plus a new root plus the meta
// image stays far below this (see splitCurrent), and the gate reserves
// this much headroom before any mutation, so an admitted group always
// fits.
const maxJournalGroup = 24

// journalGate defers a mutating operation while the journal cannot
// accept its redo group: during a checkpoint's append fence, or when the
// region lacks headroom for a worst-case group (which triggers a
// checkpoint). The gate runs before the leaf is touched, so a deferred
// operation re-runs later with no state to undo — and a checkpoint's
// dirty-page snapshot is complete, because no page can become dirty
// behind it.
func (t *Tree) journalGate(o *Op) bool {
	if !t.journalOn {
		return true
	}
	if t.jFence {
		t.scheduleRetry(o, t.cfg.RetryBackoff)
		return false
	}
	if t.wal.Remaining() < maxJournalGroup*(journalRecordBytes+wal.FrameOverhead) {
		t.maybeCheckpoint()
		t.scheduleRetry(o, t.cfg.RetryBackoff)
		return false
	}
	return true
}

// runJournal drives stJournal: append the op's redo group (once), hand
// the flushed WAL blocks to the tree-level writer, then wait until the
// durability watermark covers the group's bytes before acknowledging
// (weak) or starting the in-place writes (strong). Returns true when
// the op left the ready set.
func (t *Tree) runJournal(o *Op) bool {
	if !o.jAppended {
		t.journalBuild(o)
		o.jAppended = true
		o.jLiveMark = true
		t.jLive++
		t.jwKick()
	}
	if o.jNeed > t.jDurable {
		// The op's records ride in the shared writer's queue; park until
		// the durability watermark covers them.
		if !o.jParked {
			o.jParked = true
			t.jWaiters = append(t.jWaiters, o)
		}
		return true
	}
	o.jLiveMark = false
	t.jLive--
	if t.cfg.Persistence == WeakPersistence {
		t.finishOp(o)
		return true
	}
	o.postJournal = true
	t.postJournalLive++
	o.state = stWriteNext
	return false
}

// journalBuild appends the op's redo group — one record per modified
// page, plus the meta image when the root moves — and collects the WAL
// block writes the flush produced. The gate guaranteed capacity, so
// append errors are logic bugs.
func (t *Tree) journalBuild(o *Op) {
	cnt := len(o.modified)
	if o.commit != nil {
		cnt++
	}
	if cnt > maxJournalGroup {
		panic(fmt.Sprintf("core: journal group of %d records exceeds the gate bound", cnt))
	}
	rec := make([]byte, journalRecordBytes)
	idx := 0
	emit := func(id storage.PageID, image []byte) {
		putJU64(rec[0:8], o.seq)
		rec[8] = byte(idx)
		rec[9] = byte(cnt)
		putJU64(rec[10:18], uint64(id))
		copy(rec[18:], image)
		if _, err := t.wal.Append(rec); err != nil {
			panic("core: journal append failed after gate: " + err.Error())
		}
		idx++
	}
	for _, n := range o.modified {
		emit(n.ID, n.Encode())
	}
	if o.commit != nil {
		emit(0, t.pendingMeta(o).Encode())
	}
	t.wal.Flush(func(bi uint64, data []byte) {
		t.jwEnqueue(storage.PageID(t.walStart+bi), data)
	})
	// After Flush, UsedBytes covers everything flushed so far; the
	// watermark is certified when the flush's final block completes.
	target := t.wal.UsedBytes()
	if n := len(t.jwq); n > 0 && target > t.jwq[n-1].certify {
		t.jwq[n-1].certify = target
	}
	o.jNeed = target
	t.stats.JournalAppends += uint64(cnt)
}

// jwEnqueue queues one WAL block image for the tree-level writer. A
// pending rewrite of the same block (the growing tail) is superseded in
// place — unless it is a write currently in flight (or already landed),
// in which case the newer image queues behind it and lands after,
// preserving log order.
func (t *Tree) jwEnqueue(id storage.PageID, data []byte) {
	// Flush reuses its block buffer between calls: copy.
	cp := make([]byte, len(data))
	copy(cp, data)
	if n := len(t.jwq); n > 0 {
		tail := t.jwq[n-1]
		if tail.id == id && !tail.inflight && !tail.done && !(n == 1 && t.jwBusy) {
			tail.data = cp
			return
		}
	}
	t.jwq = append(t.jwq, &jwEntry{id: id, data: cp})
}

// jwActive reports whether the tree-level WAL writer still has work
// queued or in flight — the checkpoint pipeline's drain check, valid
// for both the single-in-flight and the pipelined writer.
func (t *Tree) jwActive() bool {
	return t.jwBusy || t.jwInflight > 0 || len(t.jwq) > 0
}

// jwKick submits queued WAL block writes. Called after enqueueing and
// from the main loop (to recover from a full submission queue).
// With WALWriteDepth 1 it is the classic writer: one write in flight,
// completions chain the next submit, the queue drains one ordered write
// at a time. With WALWriteDepth > 1 it dispatches to the pipelined
// writer instead.
func (t *Tree) jwKick() {
	if t.jwDepth > 1 {
		t.jwKickPipelined()
		return
	}
	if t.jwBusy || len(t.jwq) == 0 || t.failed {
		return
	}
	e := t.jwq[0]
	submitted := t.now()
	cmd := &nvme.Command{Op: nvme.OpWrite, LBA: uint64(e.id), Blocks: 1, Buf: e.data}
	cmd.Callback = func(c nvme.Completion) {
		t.ioBlocked--
		now := t.now()
		t.policy.OnDetected(nvme.OpWrite, submitted, now)
		if t.tr != nil {
			t.tr.Emit(tcIOWrite, classNone, 0, uint64(e.id), int64(submitted), int64(now.Sub(submitted)))
		}
		t.jwBusy = false
		if c.Err != nil {
			t.stats.IOErrors++
			if transientIOErr(c.Err) && t.jwRetries < t.cfg.MaxIORetries {
				t.jwRetries++
				t.stats.IORetries++
				t.jwKick() // resubmit the same entry
				return
			}
			t.enterFailed(c.Err)
			t.jwq = t.jwq[:0]
			t.promoteJWaiters() // failed: wake parked ops so they drain
			return
		}
		t.jwRetries = 0
		t.jwq = t.jwq[1:]
		if e.certify > t.jDurable {
			t.jDurable = e.certify
			t.promoteJWaiters()
		}
		t.jwKick()
	}
	t.charge(metrics.CatNVMe, t.cfg.Costs.IOSubmit)
	if err := t.qp.Submit(cmd); err != nil {
		return // queue full: the main loop kicks again
	}
	t.policy.OnSubmit(nvme.OpWrite, submitted)
	t.ioBlocked++
	t.stats.WritesIssued++
	t.jwBusy = true
}

// jwKickPipelined keeps up to jwDepth WAL block writes in flight at
// once (Config.WALWriteDepth > 1). Writes of distinct log blocks
// overlap; an entry whose block has an earlier not-yet-landed entry
// (an in-flight tail rewrite) stays queued behind it so same-block
// submission order — and therefore log order on the device — is
// preserved. The durability watermark advances only over the contiguous
// completed prefix (jwAdvance), so an out-of-order completion can never
// certify bytes an earlier write could still revert.
func (t *Tree) jwKickPipelined() {
	if t.failed {
		return
	}
	for i := 0; i < len(t.jwq) && t.jwInflight < t.jwDepth; i++ {
		e := t.jwq[i]
		if e.inflight || e.done {
			continue
		}
		blocked := false
		for j := 0; j < i; j++ {
			if t.jwq[j].id == e.id && !t.jwq[j].done {
				blocked = true
				break
			}
		}
		if blocked {
			continue
		}
		if !t.jwSubmit(e) {
			return // queue full: the main loop kicks again
		}
	}
}

// jwSubmit issues one pipelined WAL block write. Returns false when the
// submission queue is full (the entry stays queued).
func (t *Tree) jwSubmit(e *jwEntry) bool {
	submitted := t.now()
	cmd := &nvme.Command{Op: nvme.OpWrite, LBA: uint64(e.id), Blocks: 1, Buf: e.data}
	cmd.Callback = func(c nvme.Completion) {
		t.ioBlocked--
		now := t.now()
		t.policy.OnDetected(nvme.OpWrite, submitted, now)
		if t.tr != nil {
			t.tr.Emit(tcIOWrite, classNone, 0, uint64(e.id), int64(submitted), int64(now.Sub(submitted)))
		}
		t.jwInflight--
		e.inflight = false
		if c.Err != nil {
			t.stats.IOErrors++
			if !t.failed && transientIOErr(c.Err) && e.retries < t.cfg.MaxIORetries {
				e.retries++
				t.stats.IORetries++
				t.jwKick() // entry is queued again; resubmitted in order
				return
			}
			t.enterFailed(c.Err)
			t.jwq = t.jwq[:0]
			t.promoteJWaiters() // failed: wake parked ops so they drain
			return
		}
		e.done = true
		t.jwAdvance()
		t.jwKick()
	}
	t.charge(metrics.CatNVMe, t.cfg.Costs.IOSubmit)
	if err := t.qp.Submit(cmd); err != nil {
		return false
	}
	t.policy.OnSubmit(nvme.OpWrite, submitted)
	t.ioBlocked++
	t.stats.WritesIssued++
	e.inflight = true
	t.jwInflight++
	return true
}

// jwAdvance pops the contiguous completed prefix of the pipelined
// writer's queue, advancing the durability watermark over it and waking
// any ops it covers. A completed entry behind a still-pending earlier
// one stays queued: its certify bytes are not durable until everything
// before them has landed.
func (t *Tree) jwAdvance() {
	advanced := false
	for len(t.jwq) > 0 && t.jwq[0].done {
		if t.jwq[0].certify > t.jDurable {
			t.jDurable = t.jwq[0].certify
			advanced = true
		}
		t.jwq[0] = nil
		t.jwq = t.jwq[1:]
	}
	if advanced {
		t.promoteJWaiters()
	}
}

// promoteJWaiters wakes ops whose journal bytes became durable (or, in
// the failed state, every parked op so it can drain).
func (t *Tree) promoteJWaiters() {
	if len(t.jWaiters) == 0 {
		return
	}
	now := t.now()
	rest := t.jWaiters[:0]
	for _, o := range t.jWaiters {
		if t.failed || o.jNeed <= t.jDurable {
			o.jParked = false
			t.pushReady(o, now)
		} else {
			rest = append(rest, o)
		}
	}
	t.jWaiters = rest
}

// maybeCheckpoint spawns an internal checkpoint sync when the journal
// region is running out of headroom (3/4 full). Called from the main
// loop and from the journal gate.
func (t *Tree) maybeCheckpoint() {
	if !t.journalOn || t.failed || t.syncActive || t.checkpointPending {
		return
	}
	if t.wal.Remaining()*4 >= t.wal.CapBytes() {
		return
	}
	t.checkpointPending = true
	o := AcquireOp().InitSync()
	o.internal = true
	o.Done = func(o *Op) { o.Release() }
	t.adoptOp(o, stSyncRun)
}

// adoptOp injects a tree-spawned operation directly into the live set,
// bypassing the admission ring. Worker-thread only.
func (t *Tree) adoptOp(o *Op, st opState) {
	now := t.now()
	o.Res.Admitted = now
	o.enqueuedAt = now
	o.drainedAt = now
	t.seq++
	o.seq = t.seq
	o.tree = t
	if o.grantFn == nil {
		o.grantFn = func() { o.tree.grantLatch(o) }
	}
	o.state = st
	t.liveOps++
	if t.liveSet == nil {
		t.liveSet = make(map[uint64]*Op)
	}
	t.liveSet[o.seq] = o
	t.pushReady(o, now)
}

// putJU64 is little-endian encoding for journal record fields.
func putJU64(b []byte, v uint64) {
	_ = b[7]
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
	b[4] = byte(v >> 32)
	b[5] = byte(v >> 40)
	b[6] = byte(v >> 48)
	b[7] = byte(v >> 56)
}

func getJU64(b []byte) uint64 {
	_ = b[7]
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

// ─── Sync (weak persistence §III-C) ─────────────────────────────────────

// runSync drives a sync operation. Returns true when the op left the
// ready set.
func (t *Tree) runSync(o *Op) bool {
	if o.pendingErr != nil {
		if o.syncOutstanding > 0 {
			// Absorb the remaining completions before failing: failOp may
			// release the op back to the pool, and a late callback must
			// never run against a recycled op.
			return true
		}
		t.failOp(o, o.pendingErr)
		return true
	}
	if !o.syncStarted {
		o.syncStarted = true
		if t.rw != nil {
			o.syncQueue = t.rw.DirtyPages()
		}
		t.syncEpoch++
		meta := t.currentMeta()
		o.syncQueue = append(o.syncQueue, buffer.Dirty{ID: 0, Data: meta.Encode()})
	}
	// Submit as much of the queue as fits.
	for len(o.syncQueue) > 0 {
		d := o.syncQueue[0]
		id, data, epoch := d.ID, d.Data, d.Epoch
		submitted := t.now()
		cmd := &nvme.Command{Op: nvme.OpWrite, LBA: uint64(id), Blocks: 1, Buf: data}
		cmd.Callback = func(c nvme.Completion) {
			t.ioBlocked--
			now := t.now()
			t.policy.OnDetected(nvme.OpWrite, submitted, now)
			o.ioWait += now.Sub(submitted)
			if t.tr != nil {
				t.tr.Emit(tcIOWrite, uint16(o.kind), o.seq, uint64(id), int64(submitted), int64(now.Sub(submitted)))
			}
			o.syncOutstanding--
			if c.Err != nil {
				o.pendingErr = c.Err
			} else if id != 0 && t.rw != nil {
				t.rw.MarkClean(id, epoch)
			}
			t.pushReady(o, now)
		}
		t.charge(metrics.CatNVMe, t.cfg.Costs.IOSubmit)
		if err := t.qp.Submit(cmd); err != nil {
			break // queue full: resume when completions drain
		}
		t.policy.OnSubmit(nvme.OpWrite, submitted)
		t.ioBlocked++
		t.stats.WritesIssued++
		o.syncOutstanding++
		o.syncQueue = o.syncQueue[1:]
	}
	if len(o.syncQueue) == 0 && o.syncOutstanding == 0 {
		if !o.syncFlushSent {
			o.syncFlushSent = true
			submitted := t.now()
			cmd := &nvme.Command{Op: nvme.OpFlush}
			cmd.Callback = func(c nvme.Completion) {
				t.ioBlocked--
				now := t.now()
				t.policy.OnDetected(nvme.OpRead, submitted, now)
				o.ioWait += now.Sub(submitted)
				if t.tr != nil {
					t.tr.Emit(tcIOWrite, uint16(o.kind), o.seq, 0, int64(submitted), int64(now.Sub(submitted)))
				}
				o.syncFlushDone = true
				if c.Err != nil {
					o.pendingErr = c.Err
				}
				t.pushReady(o, now)
			}
			t.charge(metrics.CatNVMe, t.cfg.Costs.IOSubmit)
			if err := t.qp.Submit(cmd); err != nil {
				o.syncFlushSent = false
				t.stalled = append(t.stalled, o)
				return true
			}
			t.policy.OnSubmit(nvme.OpRead, submitted)
			t.ioBlocked++
			return true
		}
		if o.syncFlushDone {
			t.finishOp(o)
			return true
		}
	}
	return true // waiting for completions
}

// Journal checkpoint phases (runSyncJournaled).
const (
	spPages        = iota // write the dirty-page snapshot (weak mode)
	spPagesFlush          // barrier: snapshot + background write-backs durable
	spMetaLog             // journal the fenced meta image
	spMetaLogFlush        // barrier: the meta record is durable
	spMeta                // write the fenced meta page in place
	spMetaFlush           // barrier: meta durable
	spReset               // reset the log, zero its first block
	spResetFlush          // barrier: zero block durable
)

// runSyncJournaled drives a sync when the redo journal is on: a full
// checkpoint that makes every buffered page durable, fences the retired
// journal generation out of the meta page, and resets the log region.
// The phase order is load-bearing: data pages must be durable (flush
// barrier) before the meta fence advances, and the fence must be durable
// before the log is reset — at every crash point, either the records or
// the pages they describe survive. Always returns true (the pipeline
// never continues into another state).
func (t *Tree) runSyncJournaled(o *Op) bool {
	if o.pendingErr != nil {
		if o.syncOutstanding > 0 {
			return true // absorb outstanding completions before failing
		}
		t.failOp(o, o.pendingErr)
		return true
	}
	if !o.syncStarted {
		if t.syncActive {
			// Another sync owns the pipeline; run again once it finishes.
			t.scheduleRetry(o, t.cfg.RetryBackoff)
			return true
		}
		o.syncStarted = true
		o.syncFenced = true
		t.syncActive = true
		t.jFence = true
		if t.rw != nil {
			o.syncQueue = t.rw.DirtyPages()
		}
		o.syncPhase = spPages
	}
	for {
		switch o.syncPhase {
		case spPages:
			for len(o.syncQueue) > 0 {
				if !t.submitSyncPage(o, o.syncQueue[0]) {
					return true // queue full: stalled list resumes us
				}
				o.syncQueue = o.syncQueue[1:]
			}
			if o.syncOutstanding > 0 {
				return true
			}
			if len(t.bgQueue) > 0 || len(t.inflight) > 0 {
				// Background write-backs must land under the coming flush
				// barrier too; their completions do not reschedule this op,
				// so poll.
				t.scheduleRetry(o, t.cfg.RetryBackoff)
				return true
			}
			o.syncPhase = spPagesFlush
			o.syncSent = false

		case spPagesFlush, spMetaLogFlush, spMetaFlush, spResetFlush:
			if !o.syncSent {
				phase := o.syncPhase
				ok := t.submitSyncCmd(o, &nvme.Command{Op: nvme.OpFlush}, func() {
					switch phase {
					case spPagesFlush:
						o.syncPhase = spMetaLog
					case spMetaLogFlush:
						o.syncPhase = spMeta
					case spMetaFlush:
						o.syncPhase = spReset
					case spResetFlush:
						o.syncPhase = -1 // complete
					}
					o.syncSent = false
				})
				if !ok {
					return true // stalled
				}
				o.syncSent = true
			}
			return true

		case spMetaLog:
			if t.jLive > 0 || t.postJournalLive > 0 || t.jwActive() {
				// Ops whose records are in the retiring generation must
				// finish their in-place / buffered writes first — and the
				// shared WAL writer must drain — before the log is retired;
				// the fence keeps new ones out.
				t.scheduleRetry(o, t.cfg.RetryBackoff)
				return true
			}
			// Journal the fenced meta image before writing it in place: a
			// crash that tears page 0 mid-write is then always healable,
			// even when no root move left a meta record in this generation.
			// The image is rebuilt identically in spMeta (nothing that
			// feeds it can change while the fence is up).
			if !o.jAppended {
				rec := make([]byte, journalRecordBytes)
				putJU64(rec[0:8], o.seq)
				rec[8], rec[9] = 0, 1
				putJU64(rec[10:18], 0)
				t.syncMetaImage(rec[18:])
				if _, err := t.wal.Append(rec); err == nil {
					o.jBlocks = o.jBlocks[:0]
					t.wal.Flush(func(bi uint64, data []byte) {
						cp := make([]byte, len(data))
						copy(cp, data)
						o.jBlocks = append(o.jBlocks, writeReq{id: storage.PageID(t.walStart + bi), data: cp})
					})
					t.stats.JournalAppends++
				}
				o.jAppended = true
				o.jIdx = 0
			}
			for o.jIdx < len(o.jBlocks) {
				if o.syncOutstanding > 0 {
					return true
				}
				w := o.jBlocks[o.jIdx]
				cmd := &nvme.Command{Op: nvme.OpWrite, LBA: uint64(w.id), Blocks: 1, Buf: w.data}
				if !t.submitSyncCmd(o, cmd, func() { o.jIdx++ }) {
					return true
				}
				return true
			}
			if o.syncOutstanding > 0 {
				return true
			}
			o.syncPhase = spMetaLogFlush
			o.syncSent = false

		case spMeta:
			if !o.syncSent {
				buf := make([]byte, storage.PageSize)
				t.syncMetaImage(buf)
				cmd := &nvme.Command{Op: nvme.OpWrite, LBA: 0, Blocks: 1, Buf: buf}
				ok := t.submitSyncCmd(o, cmd, func() {
					t.syncEpoch++
					o.syncPhase = spMetaFlush
					o.syncSent = false
				})
				if !ok {
					return true
				}
				o.syncSent = true
			}
			return true

		case spReset:
			if !o.syncResetDone {
				// The physical zero-block write is issued below (and
				// retried if it fails); Reset's own write callback is a
				// no-op so the in-memory state advances exactly once.
				t.wal.Reset(func(uint64, []byte) {})
				t.jDurable = 0
				o.syncResetDone = true
			}
			if !o.syncSent {
				cmd := &nvme.Command{Op: nvme.OpWrite, LBA: t.walStart, Blocks: 1,
					Buf: make([]byte, storage.PageSize)}
				ok := t.submitSyncCmd(o, cmd, func() {
					o.syncPhase = spResetFlush
					o.syncSent = false
				})
				if !ok {
					return true
				}
				o.syncSent = true
			}
			return true

		case -1:
			t.stats.Checkpoints++
			t.finishOp(o) // opTeardown lifts the fence and syncActive
			return true

		default:
			panic(fmt.Sprintf("core: bad sync phase %d", o.syncPhase))
		}
	}
}

// syncMetaImage encodes the checkpoint's fenced meta page into buf: the
// present tree state with the sync epoch advanced and the journal
// generation bumped past every record in the region. Both spMetaLog and
// spMeta call it; with the fence up and the journal quiesced its inputs
// cannot change between phases, so the two images are byte-identical.
func (t *Tree) syncMetaImage(buf []byte) {
	meta := t.currentMeta()
	meta.SyncEpoch = t.syncEpoch + 1
	meta.WALGen = t.wal.Generation() + 1
	meta.EncodeTo(buf)
}

// submitSyncPage issues one dirty-page write for the checkpoint
// snapshot. A transient error re-appends the page to the op's queue
// (consuming retry budget); exhaustion or a non-transient status fails
// the device. Returns false when the submission queue is full (the
// caller keeps the entry queued and the stalled list reschedules).
func (t *Tree) submitSyncPage(o *Op, d buffer.Dirty) bool {
	id, data, epoch := d.ID, d.Data, d.Epoch
	t.specInvalidate(id)
	submitted := t.now()
	cmd := &nvme.Command{Op: nvme.OpWrite, LBA: uint64(id), Blocks: 1, Buf: data}
	cmd.Callback = func(c nvme.Completion) {
		t.ioBlocked--
		now := t.now()
		t.policy.OnDetected(nvme.OpWrite, submitted, now)
		o.ioWait += now.Sub(submitted)
		if t.tr != nil {
			t.tr.Emit(tcIOWrite, uint16(o.kind), o.seq, uint64(id), int64(submitted), int64(now.Sub(submitted)))
		}
		o.syncOutstanding--
		if c.Err != nil {
			t.stats.IOErrors++
			if !t.failed && transientIOErr(c.Err) && o.ioRetries < t.cfg.MaxIORetries {
				o.ioRetries++
				t.stats.IORetries++
				o.syncQueue = append(o.syncQueue, d)
			} else {
				t.enterFailed(c.Err)
				o.pendingErr = ErrDeviceFailed
			}
		} else if id != 0 && t.rw != nil {
			t.rw.MarkClean(id, epoch)
		}
		t.pushReady(o, now)
	}
	t.charge(metrics.CatNVMe, t.cfg.Costs.IOSubmit)
	if err := t.qp.Submit(cmd); err != nil {
		t.stalled = append(t.stalled, o)
		return false
	}
	t.policy.OnSubmit(nvme.OpWrite, submitted)
	t.ioBlocked++
	t.stats.WritesIssued++
	o.syncOutstanding++
	return true
}

// submitSyncCmd issues one phase command (flush, meta write, zero-block
// write) for the journaled sync pipeline. On success onOK runs in the
// completion callback; a transient error clears syncSent so the phase
// resubmits; a terminal one fails the device. Returns false when the
// submission queue is full.
func (t *Tree) submitSyncCmd(o *Op, cmd *nvme.Command, onOK func()) bool {
	submitted := t.now()
	cmd.Callback = func(c nvme.Completion) {
		t.ioBlocked--
		now := t.now()
		t.policy.OnDetected(cmd.Op, submitted, now)
		o.ioWait += now.Sub(submitted)
		if t.tr != nil {
			t.tr.Emit(tcIOWrite, uint16(o.kind), o.seq, cmd.LBA, int64(submitted), int64(now.Sub(submitted)))
		}
		o.syncOutstanding--
		if c.Err != nil {
			t.stats.IOErrors++
			if !t.failed && transientIOErr(c.Err) && o.ioRetries < t.cfg.MaxIORetries {
				o.ioRetries++
				t.stats.IORetries++
				o.syncSent = false // the phase resubmits
			} else {
				t.enterFailed(c.Err)
				o.pendingErr = ErrDeviceFailed
			}
		} else if onOK != nil {
			onOK()
		}
		t.pushReady(o, now)
	}
	t.charge(metrics.CatNVMe, t.cfg.Costs.IOSubmit)
	if err := t.qp.Submit(cmd); err != nil {
		t.stalled = append(t.stalled, o)
		return false
	}
	t.policy.OnSubmit(cmd.Op, submitted)
	t.ioBlocked++
	if cmd.Op == nvme.OpWrite {
		t.stats.WritesIssued++
	}
	o.syncOutstanding++
	return true
}

// ─── Latch helpers ──────────────────────────────────────────────────────

// acquireLatch requests a latch for o, returning true on immediate grant.
// On a queued request the op's reusable grant callback (an op waits on at
// most one latch at a time, so the request parameters ride in
// o.pendingLatch rather than a fresh closure) pushes o back to ready.
func (t *Tree) acquireLatch(o *Op, id storage.PageID, mode latch.Mode) bool {
	t.charge(metrics.CatSync, t.cfg.Costs.LatchOp)
	o.pendingLatch = heldLatch{id: id, mode: mode}
	granted := t.latches.Acquire(id, mode, o.grantFn)
	if granted {
		o.held = append(o.held, o.pendingLatch)
	} else {
		o.latchFrom = t.now() // contended: wait starts now
	}
	return granted
}

// grantLatch is the body of every op's reusable grant callback.
func (t *Tree) grantLatch(o *Op) {
	now := t.now()
	if w := now.Sub(o.latchFrom); w > 0 {
		o.latchWait += w
		if t.tr != nil {
			t.tr.Emit(tcLatchWait, uint16(o.kind), o.seq, uint64(o.pendingLatch.id), int64(o.latchFrom), int64(w))
		}
	}
	o.held = append(o.held, o.pendingLatch)
	t.pushReady(o, now)
}

// releaseLatch drops one held latch by id.
func (t *Tree) releaseLatch(o *Op, id storage.PageID) {
	for i, h := range o.held {
		if h.id == id {
			o.held = append(o.held[:i], o.held[i+1:]...)
			t.charge(metrics.CatSync, t.cfg.Costs.LatchOp)
			t.latches.Release(id, h.mode)
			return
		}
	}
	panic(fmt.Sprintf("core: releasing latch not held: page %d", id))
}

// releaseAllExcept drops every held latch except the one on keep.
func (t *Tree) releaseAllExcept(o *Op, keep storage.PageID) {
	kept := o.held[:0]
	for _, h := range o.held {
		if h.id == keep {
			kept = append(kept, h)
			continue
		}
		t.charge(metrics.CatSync, t.cfg.Costs.LatchOp)
		t.latches.Release(h.id, h.mode)
	}
	o.held = kept
}

// releaseAll drops every held latch.
func (t *Tree) releaseAll(o *Op) {
	for _, h := range o.held {
		t.charge(metrics.CatSync, t.cfg.Costs.LatchOp)
		t.latches.Release(h.id, h.mode)
	}
	o.held = o.held[:0]
}

// ─── Completion ─────────────────────────────────────────────────────────

func (t *Tree) finishOp(o *Op) {
	if o.pendingErr != nil {
		t.failOp(o, o.pendingErr)
		return
	}
	if o.commit != nil {
		o.commit()
		o.commit = nil
	}
	// Publish the op's page group before the pending-key mark is released
	// in opTeardown and before Done acks the caller: an optimistic read
	// racing this completion either sees the key still pending (and takes
	// the pipeline) or sees the published new pages — never stale data
	// after the ack (acked-write visibility).
	t.publishGroup(o)
	t.releaseAll(o)
	t.opTeardown(o)
	o.state = stDone
	o.Res.Completed = t.now()
	t.liveOps--
	delete(t.liveSet, o.seq)
	t.stats.Completed[o.kind]++
	lat := o.Res.Latency()
	t.stats.Latency.Record(lat)
	if o.kind == KindSearch || o.kind == KindRange {
		t.stats.SearchLatency.Record(lat)
	} else {
		t.stats.UpdateLatency.Record(lat)
	}
	t.completeOp(o)
}

func (t *Tree) failOp(o *Op, err error) {
	o.Res.Err = err
	t.releaseAll(o)
	t.opTeardown(o)
	o.state = stDone
	o.Res.Completed = t.now()
	t.liveOps--
	delete(t.liveSet, o.seq)
	t.stats.Completed[o.kind]++
	t.completeOp(o)
}

// opTeardown releases every piece of journal/sync pipeline state an op
// may hold when it terminates, successfully or not. It must be
// idempotent: finishOp falls through to failOp when pendingErr is set,
// and both call it.
func (t *Tree) opTeardown(o *Op) {
	t.unnotePending(o)
	if o.keyGated {
		o.keyGated = false
		if next := o.keyNext; next != nil {
			// Hand the key to the next parked op in admission order. The
			// successor pointer must be severed before completeOp recycles
			// this op into the pool.
			o.keyNext = nil
			t.pushReady(next, t.now())
		} else if t.keyDeps[o.key] == o {
			delete(t.keyDeps, o.key)
		}
	}
	if o.jLiveMark {
		o.jLiveMark = false
		t.jLive--
	}
	if o.postJournal {
		o.postJournal = false
		t.postJournalLive--
	}
	if o.jParked {
		o.jParked = false
		for i, w := range t.jWaiters {
			if w == o {
				t.jWaiters = append(t.jWaiters[:i], t.jWaiters[i+1:]...)
				break
			}
		}
	}
	if o.syncFenced {
		o.syncFenced = false
		t.jFence = false
		t.syncActive = false
	}
	if o.internal && o.kind == KindSync {
		t.checkpointPending = false
	}
}

// completeOp records the op's stage timings and runs its completion
// callback, timing the delivery. The callback may Release o back to the
// pool, so every field used afterwards is captured first.
func (t *Tree) completeOp(o *Op) {
	t.unnoteEntered(o)
	t.recordStages(o)
	if t.tr != nil {
		t.tr.Emit(tcOp, uint16(o.kind), o.seq, uint64(o.key), int64(o.Res.Admitted), int64(o.Res.Latency()))
		if o.Span != 0 {
			// Cross-process link: lets trace.Stitch tie this op back to the
			// serving span that produced it. Never fires in simulation runs
			// (nothing sets Span there), keeping sim traces byte-identical.
			t.tr.Emit(tcSpan, uint16(o.kind), o.seq, o.Span, int64(o.Res.Completed), trace.Instant)
		}
	}
	kind, seq, done := o.kind, o.seq, o.Res.Completed
	if o.Done != nil {
		o.Done(o)
		d := t.now().Sub(done)
		t.stats.Stages.Record(metrics.StageDeliver, int(kind), d)
		if t.tr != nil && d > 0 {
			t.tr.Emit(tcDeliver, uint16(kind), seq, 0, int64(done), int64(d))
		}
	}
}

// recordStages folds a completing op's timestamps into the per-stage
// histograms. Admit-wait, latch-wait and io-wait are recorded only when
// the op actually waited there (see Stats.Stages).
func (t *Tree) recordStages(o *Op) {
	st := t.stats.Stages
	k := int(o.kind)
	if aw := o.enqueuedAt.Sub(o.Res.Admitted); aw > 0 {
		st.Record(metrics.StageAdmitWait, k, aw)
	}
	st.Record(metrics.StageInbox, k, o.drainedAt.Sub(o.enqueuedAt))
	st.Record(metrics.StageQueueWait, k, o.queueWait)
	// Fold the queue-wait into the cross-thread EWMA (worker is the sole
	// writer; admission governors read it — see QueueWaitEWMA).
	old := t.qwEWMA.Load()
	t.qwEWMA.Store(old - old/8 + int64(o.queueWait)/8)
	if o.latchWait > 0 {
		st.Record(metrics.StageLatchWait, k, o.latchWait)
	}
	if o.ioWait > 0 {
		st.Record(metrics.StageIOWait, k, o.ioWait)
	}
	st.Record(metrics.StageTotal, k, o.Res.Latency())
}

// DebugState summarizes internal state for diagnostics.
func (t *Tree) DebugState() string {
	return fmt.Sprintf("live=%d ioBlocked=%d ready=%d inbox=%d stalled=%d bg=%d inflight=%d latchNodes=%d",
		t.liveOps, t.ioBlocked, t.ready.Len(), t.inbox.Len(), len(t.stalled), len(t.bgQueue), len(t.inflight), t.latches.ActiveNodes())
}

// DebugCounters reports push/pop counts.
func (t *Tree) DebugCounters() (uint64, uint64) { return t.dbgPush, t.dbgPop }

// DebugOps dumps every live operation for diagnostics.
func (t *Tree) DebugOps() string {
	out := ""
	for _, o := range t.liveSet {
		out += fmt.Sprintf("op%d %s key=%d state=%d cur=%d depth=%d inReady=%v held=%v mods=%d\n",
			o.seq, o.kind, o.key, o.state, o.cur, o.depth, o.inReady, o.held, len(o.modified))
	}
	return out
}

// DebugLatches dumps the latch table for diagnostics.
func (t *Tree) DebugLatches() string { return t.latches.Dump() }
