package core

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"time"

	"github.com/patree/patree/internal/buffer"
	"github.com/patree/patree/internal/latch"
	"github.com/patree/patree/internal/metrics"
	"github.com/patree/patree/internal/nvme"
	"github.com/patree/patree/internal/sched"
	"github.com/patree/patree/internal/sim"
	"github.com/patree/patree/internal/storage"
	"github.com/patree/patree/internal/trace"
)

// innerSplitMargin is how far below the hard inner capacity a node must be
// before we descend through it on the insert path: a single leaf overflow
// can cascade up to ceil(log2(leaf entries)) separators into one parent
// (multi-split of small entries around one large value), so parents keep
// at least this much slack. See DESIGN.md.
const innerSplitMargin = 6

// ErrValueTooLarge mirrors storage.ErrValueTooLarge at the operation level.
var ErrValueTooLarge = storage.ErrValueTooLarge

// ErrStopped is returned for operations admitted after Stop.
var ErrStopped = errors.New("core: tree stopped")

// ErrBacklog is returned by TryAdmit/TryAdmitBatch when the bounded
// admission ring is full — backpressure the embedder can react to.
var ErrBacklog = errors.New("core: admission ring full")

// Stats aggregates the tree-side measurements the experiments report.
type Stats struct {
	Completed       [numKinds]uint64 // by Kind
	Latency         *metrics.Histogram
	SearchLatency   *metrics.Histogram
	UpdateLatency   *metrics.Histogram
	Probes          uint64
	ProbeHits       uint64 // probes that reaped >= 1 completion
	CompletionsSeen uint64
	Yields          uint64
	YieldTime       time.Duration
	// AdmitWaits counts blocking Admit calls that found the ring full and
	// had to back off at least once (backpressure events).
	AdmitWaits uint64
	// IdleSpinTime is CPU burned busy-polling with nothing to do; it is
	// charged to the "others" category and reported separately so the
	// Figure 9 / Table II attribution can exclude it (perf-style cycle
	// attribution does not see a wait loop as scheduling work).
	IdleSpinTime time.Duration
	ReadsIssued     uint64
	WritesIssued    uint64
	Splits          uint64
	// Stages holds per-stage, per-kind latency histograms: where each
	// operation's time went between admission and completion (see
	// metrics.Stage). The conditional stages (admit-wait, latch-wait,
	// io-wait) record only operations that actually waited there, so
	// their percentiles describe the waiters, not a sea of zeros.
	Stages *metrics.StageSet
}

// TotalOps returns the number of completed index operations. Pipeline
// no-ops are excluded: they are diagnostics (and stats carriers), not
// index work.
func (s Stats) TotalOps() uint64 {
	var t uint64
	for k, c := range s.Completed {
		if Kind(k) == KindNop {
			continue
		}
		t += c
	}
	return t
}

// Tree is a PA-Tree instance bound to a device queue pair and an
// execution environment. All methods except Admit and Stop must be called
// from the working thread.
type Tree struct {
	cfg Config
	dev nvme.Device
	qp  nvme.QueuePair
	env Env

	// In-memory superblock state (persisted via the meta page on Sync).
	rootID    storage.PageID
	height    int
	numKeys   uint64
	syncEpoch uint64
	alloc     *storage.Allocator

	latches *latch.Table
	ro      *buffer.ReadOnly  // strong persistence
	rw      *buffer.ReadWrite // weak persistence

	// inflight tracks weak-mode write-backs between submission and
	// completion so read misses never fetch stale pages from the device.
	inflight map[storage.PageID][]byte
	bgQueue  []buffer.Dirty // dirty evictions awaiting submission

	policy  sched.Policy
	ready   sched.ReadyQueue
	stalled []*Op // ops whose submission hit a full queue

	// inbox is the bounded MPSC admission ring; admitters counts producers
	// inside Admit between their stopped-check and their publish, so the
	// worker never exits while an admission is in flight (an op can then
	// neither be lost nor left waiting forever). wake, when non-nil,
	// interrupts a real-environment idle sleep the moment work arrives.
	inbox      *opRing
	admitters  atomic.Int64
	admitWaits atomic.Uint64
	wake       func()
	// spin, when the environment provides SpinWait, busy-polls short
	// yields while I/O is outstanding instead of parking on an OS timer
	// whose resolution dwarfs device latency (see Run).
	spin    func(time.Duration)
	stopped atomic.Bool
	running bool

	// tr is Config.Tracer (nil = tracing off). All emission happens on
	// the working thread; producer-side facts arrive as timestamps on the
	// Op and are emitted retroactively at drain time.
	tr *trace.Tracer

	seq        uint64
	dbgPush    uint64
	dbgPop     uint64
	liveSet    map[uint64]*Op
	liveOps    int
	ioBlocked  int
	charges    [5]time.Duration
	stats      Stats
	pollerLive bool
}

// New creates a tree on dev using an existing on-device image described
// by meta (use Format to initialize a fresh device).
func New(dev nvme.Device, cfg Config, env Env, meta *storage.Meta) (*Tree, error) {
	cfg = cfg.WithDefaults()
	qp, err := dev.AllocQueuePair(cfg.QueueDepth)
	if err != nil {
		return nil, err
	}
	t := &Tree{
		cfg:       cfg,
		dev:       dev,
		qp:        qp,
		env:       env,
		rootID:    meta.Root,
		height:    int(meta.Height),
		numKeys:   meta.NumKeys,
		syncEpoch: meta.SyncEpoch,
		alloc:     storage.NewAllocator(meta.Watermark),
		latches:   latch.NewTable(),
		inflight:  make(map[storage.PageID][]byte),
		policy:    cfg.Policy,
		inbox:     newOpRing(cfg.InboxDepth),
		tr:        cfg.Tracer,
	}
	if w, ok := env.(interface{ Wake() }); ok {
		t.wake = w.Wake
	}
	if s, ok := env.(interface{ SpinWait(time.Duration) }); ok {
		t.spin = s.SpinWait
	}
	if cfg.Persistence == WeakPersistence {
		t.rw = buffer.NewReadWrite(cfg.BufferPages)
	} else {
		t.ro = buffer.NewReadOnly(cfg.BufferPages)
	}
	if cfg.Prioritized {
		t.ready = sched.NewPriority()
	} else {
		t.ready = sched.NewFIFO()
	}
	t.stats.Latency = metrics.NewHistogram()
	t.stats.SearchLatency = metrics.NewHistogram()
	t.stats.UpdateLatency = metrics.NewHistogram()
	t.stats.Stages = metrics.NewStageSet(numKinds)
	return t, nil
}

// Format initializes a fresh device with an empty tree (meta page + empty
// root leaf) using direct synchronous I/O, and returns the meta image.
func Format(dev nvme.Device) (*storage.Meta, error) {
	root := storage.NewLeaf(1)
	meta := &storage.Meta{Root: 1, Height: 1, Watermark: 2}
	if err := syncWrite(dev, 1, root.Encode()); err != nil {
		return nil, err
	}
	if err := syncWrite(dev, 0, meta.Encode()); err != nil {
		return nil, err
	}
	return meta, nil
}

// ReadMeta loads the meta page from the device synchronously.
func ReadMeta(dev nvme.Device) (*storage.Meta, error) {
	buf := make([]byte, storage.PageSize)
	if err := syncRead(dev, 0, buf); err != nil {
		return nil, err
	}
	return storage.DecodeMeta(buf)
}

// syncWrite performs a blocking single-page write: submit, then poll.
// Used only for setup/recovery paths, never on the index hot path.
func syncWrite(dev nvme.Device, id storage.PageID, data []byte) error {
	return syncIO(dev, &nvme.Command{Op: nvme.OpWrite, LBA: uint64(id), Blocks: 1, Buf: data})
}

func syncRead(dev nvme.Device, id storage.PageID, buf []byte) error {
	return syncIO(dev, &nvme.Command{Op: nvme.OpRead, LBA: uint64(id), Blocks: 1, Buf: buf})
}

func syncIO(dev nvme.Device, cmd *nvme.Command) error {
	qp, err := dev.AllocQueuePair(4)
	if err != nil {
		return err
	}
	defer qp.Free()
	done := false
	var ioErr error
	cmd.Callback = func(c nvme.Completion) { done = true; ioErr = c.Err }
	if err := qp.Submit(cmd); err != nil {
		return err
	}
	// On the simulated device, completions appear as the engine advances;
	// tests drive the engine before relying on the result. On the real
	// device, poll until done.
	if sd, ok := dev.(*nvme.SimDevice); ok {
		sd.Advance()
		qp.Probe(0)
		if !done {
			return fmt.Errorf("core: sync I/O did not complete")
		}
		return ioErr
	}
	deadline := time.Now().Add(10 * time.Second)
	for !done {
		qp.Probe(0)
		if time.Now().After(deadline) {
			return fmt.Errorf("core: sync I/O timed out")
		}
	}
	return ioErr
}

// now returns the environment clock.
func (t *Tree) now() sim.Time { return t.env.Now() }

// charge accumulates CPU cost; chargeFlush turns the accumulation into
// actual environment work (one batch per main-loop pass keeps the
// simulated-thread handoff overhead low).
func (t *Tree) charge(cat metrics.CPUCategory, d time.Duration) { t.charges[cat] += d }

func (t *Tree) chargeFlush() {
	for cat, d := range t.charges {
		if d > 0 {
			t.env.Work(metrics.CPUCategory(cat), d)
			t.charges[cat] = 0
		}
	}
}

// Admit hands an operation to the working thread. Safe to call from any
// goroutine (real mode) or any simulation context (sim mode). When the
// bounded admission ring is full, Admit blocks until the working thread
// drains room (backpressure); use TryAdmit for a non-blocking variant.
func (t *Tree) Admit(o *Op) {
	t.admitters.Add(1)
	o.Res.Admitted = t.now()
	// enqueuedAt is (re)stamped before every push attempt, so admit-wait
	// (enqueuedAt − Admitted) measures the backpressure this op absorbed.
	// The ring's release-store publishes it with the rest of the op.
	o.enqueuedAt = o.Res.Admitted
	if t.stopped.Load() {
		t.admitters.Add(-1)
		t.failAdmit(o)
		return
	}
	if !t.inbox.TryPush(o) {
		t.admitWaits.Add(1)
		spins := 0
		for {
			if t.stopped.Load() {
				t.admitters.Add(-1)
				t.failAdmit(o)
				return
			}
			t.admitBackoff(&spins)
			o.enqueuedAt = t.now()
			if t.inbox.TryPush(o) {
				break
			}
		}
	}
	t.admitters.Add(-1)
	if t.wake != nil {
		t.wake()
	}
}

// TryAdmit is Admit without blocking: it returns ErrBacklog (touching
// nothing) when the ring is full, and ErrStopped (after completing o with
// that error) when the tree has stopped; nil means o was admitted.
func (t *Tree) TryAdmit(o *Op) error {
	t.admitters.Add(1)
	o.Res.Admitted = t.now()
	o.enqueuedAt = o.Res.Admitted
	if t.stopped.Load() {
		t.admitters.Add(-1)
		t.failAdmit(o)
		return ErrStopped
	}
	if !t.inbox.TryPush(o) {
		t.admitters.Add(-1)
		return ErrBacklog
	}
	t.admitters.Add(-1)
	if t.wake != nil {
		t.wake()
	}
	return nil
}

// AdmitBatch admits ops as contiguous transactions on the ring: no
// foreign operation interleaves into a chunk, so a batch is processed as
// a group in admission order. Batches larger than the ring are split into
// ring-sized chunks. Like Admit it blocks under backpressure, and fails
// every (remaining) op with ErrStopped once the tree has stopped.
func (t *Tree) AdmitBatch(ops []*Op) {
	t.admitters.Add(1)
	now := t.now()
	for _, o := range ops {
		o.Res.Admitted = now
		o.enqueuedAt = now
	}
	for len(ops) > 0 {
		if t.stopped.Load() {
			t.admitters.Add(-1)
			for _, o := range ops {
				t.failAdmit(o)
			}
			return
		}
		chunk := ops
		if len(chunk) > t.inbox.Cap() {
			chunk = chunk[:t.inbox.Cap()]
		}
		if !t.inbox.TryPushN(chunk) {
			t.admitWaits.Add(1)
			spins := 0
			for {
				if t.stopped.Load() {
					t.admitters.Add(-1)
					for _, o := range ops {
						t.failAdmit(o)
					}
					return
				}
				t.admitBackoff(&spins)
				retry := t.now()
				for _, o := range chunk {
					o.enqueuedAt = retry
				}
				if t.inbox.TryPushN(chunk) {
					break
				}
			}
		}
		ops = ops[len(chunk):]
	}
	t.admitters.Add(-1)
	if t.wake != nil {
		t.wake()
	}
}

// TryAdmitBatch admits ops as one contiguous ring transaction or not at
// all: it returns ErrBacklog (touching nothing) when the ring lacks room
// for the whole batch right now, and ErrStopped (after completing every
// op with that error) when the tree has stopped.
func (t *Tree) TryAdmitBatch(ops []*Op) error {
	if len(ops) > t.inbox.Cap() {
		return ErrBacklog
	}
	t.admitters.Add(1)
	now := t.now()
	for _, o := range ops {
		o.Res.Admitted = now
		o.enqueuedAt = now
	}
	if t.stopped.Load() {
		t.admitters.Add(-1)
		for _, o := range ops {
			t.failAdmit(o)
		}
		return ErrStopped
	}
	if !t.inbox.TryPushN(ops) {
		t.admitters.Add(-1)
		return ErrBacklog
	}
	t.admitters.Add(-1)
	if t.wake != nil {
		t.wake()
	}
	return nil
}

// failAdmit completes an operation that cannot be admitted.
func (t *Tree) failAdmit(o *Op) {
	o.Res.Err = ErrStopped
	o.Res.Completed = o.Res.Admitted
	if o.Done != nil {
		o.Done(o)
	}
}

// admitBackoff parks a producer blocked on a full ring. Only the real
// environment can legitimately reach it: there the worker drains the ring
// concurrently. In the cooperative simulation the worker cannot run while
// the admitting callback spins, so a full ring there is a configuration
// error (raise Config.InboxDepth above the offered concurrency) and is
// reported as such rather than deadlocking silently.
func (t *Tree) admitBackoff(spins *int) {
	*spins++
	if t.wake == nil && *spins > 1<<20 {
		panic("core: admission ring full in a simulated environment; raise Config.InboxDepth")
	}
	if *spins%64 == 0 {
		time.Sleep(time.Microsecond)
	} else {
		runtime.Gosched()
	}
}

// Stop makes Run return once all admitted operations have completed.
func (t *Tree) Stop() {
	t.stopped.Store(true)
	if t.wake != nil {
		t.wake()
	}
}

// StatsSnapshot returns a copy of the tree statistics (histograms are
// shared references; treat as read-only).
func (t *Tree) StatsSnapshot() Stats {
	st := t.stats
	st.AdmitWaits = t.admitWaits.Load()
	return st
}

// ResetStats zeroes counters and histograms (used by the harness to
// exclude warm-up).
func (t *Tree) ResetStats() {
	lat, sl, ul, stg := t.stats.Latency, t.stats.SearchLatency, t.stats.UpdateLatency, t.stats.Stages
	lat.Reset()
	sl.Reset()
	ul.Reset()
	stg.Reset()
	t.stats = Stats{Latency: lat, SearchLatency: sl, UpdateLatency: ul, Stages: stg}
	t.latches.ResetStats()
	if t.ro != nil {
		t.ro.ResetStats()
	}
	if t.rw != nil {
		t.rw.ResetStats()
	}
}

// BufferStats returns the active buffer's counters.
func (t *Tree) BufferStats() buffer.Stats {
	if t.rw != nil {
		return t.rw.Stats()
	}
	return t.ro.Stats()
}

// LatchWaits exposes latch contention (Figure 12 analysis).
func (t *Tree) LatchWaits() uint64 { return t.latches.Waits() }

// CPUSnapshot exposes the environment's live per-category CPU account
// (the Figure 9 attribution). Treat as read-only; on the simulated
// environment it reflects virtual CPU actually consumed.
func (t *Tree) CPUSnapshot() *metrics.CPUAccount { return t.env.CPU() }

// Tracer returns the configured lifecycle tracer (nil when tracing is
// off). Snapshot with Tracer().Events() from the working thread.
func (t *Tree) Tracer() *trace.Tracer { return t.tr }

// NumKeys returns the in-memory key count.
func (t *Tree) NumKeys() uint64 { return t.numKeys }

// Height returns the tree height (1 = single leaf).
func (t *Tree) Height() int { return t.height }

func (t *Tree) drainInbox() {
	drained := 0
	var drainNow sim.Time
	for {
		o, ok := t.inbox.Pop()
		if !ok {
			break
		}
		if drained == 0 {
			// One clock read covers the whole drain batch: every op in it
			// becomes ready at the same instant.
			drainNow = t.now()
		}
		drained++
		t.seq++
		o.seq = t.seq
		o.tree = t
		if o.grantFn == nil {
			o.grantFn = func() { o.tree.grantLatch(o) }
		}
		o.state = stEntry
		if o.kind == KindSync {
			o.state = stSyncRun
		}
		t.liveOps++
		if t.liveSet == nil {
			t.liveSet = make(map[uint64]*Op)
		}
		t.liveSet[o.seq] = o
		o.drainedAt = drainNow
		if t.tr != nil {
			// Producer-side events, emitted retroactively now that the op
			// is on the worker (the tracer is single-threaded by design).
			if w := o.enqueuedAt.Sub(o.Res.Admitted); w > 0 {
				t.tr.Emit(tcAdmitWait, uint16(o.kind), o.seq, 0, int64(o.Res.Admitted), int64(w))
			}
			t.tr.Emit(tcInbox, uint16(o.kind), o.seq, 0, int64(o.enqueuedAt), int64(drainNow.Sub(o.enqueuedAt)))
		}
		t.pushReady(o, drainNow)
	}
	if drained > 0 {
		t.policy.OnAdmit(drained, drainNow)
	}
}

func (t *Tree) inboxEmpty() bool { return t.inbox.Empty() }

// pushReady moves an op into the ready set (idempotent). at is the
// push instant — callers already hold a fresh clock reading for their
// own accounting, so the queue-wait stamp rides along for free.
func (t *Tree) pushReady(o *Op, at sim.Time) {
	if o.inReady {
		return
	}
	o.inReady = true
	o.readyAt = at
	t.dbgPush++
	t.charge(metrics.CatSched, t.cfg.Costs.ReadyPushPop)
	t.ready.Push(sched.Entry{Seq: o.seq, HoldsWrite: o.holdsWrite, Op: o})
}

// Run executes the working-thread main loop (Algorithm 2; Algorithm 1 is
// the same loop under the AlwaysProbe policy with a FIFO ready queue).
// It returns after Stop() once every admitted operation has completed.
func (t *Tree) Run() {
	t.running = true
	costs := &t.cfg.Costs
	for {
		t.drainInbox()
		progressed := false
		if e, ok := t.ready.Pop(); ok {
			op := e.Op.(*Op)
			t.dbgPop++
			op.inReady = false
			if w := t.now().Sub(op.readyAt); w > 0 {
				op.queueWait += w
				if t.tr != nil {
					t.tr.Emit(tcQueueWait, uint16(op.kind), op.seq, 0, int64(op.readyAt), int64(w))
				}
			}
			t.process(op)
			progressed = true
		}
		if t.cfg.Poller == PollerInline {
			t.charge(metrics.CatSched, t.policy.Overhead())
			if t.policy.ShouldProbe(t.now(), t.ioBlocked) {
				t.probe(t.policy)
			}
		}
		t.resubmitStalled()
		t.charge(metrics.CatSched, costs.SchedStep)
		if !progressed && t.ready.Len() == 0 && t.inboxEmpty() {
			// Exit order matters: admitters is read before re-checking the
			// ring so a producer that published between the two reads is
			// seen either via its admitters hold or via the ring itself.
			if t.stopped.Load() && t.liveOps == 0 &&
				t.admitters.Load() == 0 && t.inboxEmpty() {
				break
			}
			if y := t.policy.YieldFor(t.now(), t.ioBlocked); y > 0 {
				t.chargeFlush()
				t.stats.Yields++
				t.stats.YieldTime += y
				if t.tr != nil {
					t.tr.Emit(tcYield, classNone, 0, uint64(t.ioBlocked), int64(t.now()), int64(y))
				}
				if t.ioBlocked > 0 && t.spin != nil {
					// Completions are imminent (device latency is well
					// under a timer tick): poll instead of parking, or the
					// OS timer becomes the I/O completion path. This is
					// the polled-mode behaviour the paper's design
					// assumes; a true idle (no I/O outstanding) still
					// parks below and is woken by admission.
					t.spin(y)
				} else {
					t.env.Sleep(y)
				}
			} else {
				// Busy-poll: burn a spin quantum so virtual time advances
				// (this is the CPU waste Figure 13 quantifies).
				t.charge(metrics.CatOther, costs.IdleSpin)
				t.stats.IdleSpinTime += costs.IdleSpin
			}
		}
		t.chargeFlush()
	}
	t.running = false
	t.chargeFlush()
	// Defensive sweep: the admitters protocol means no op should remain,
	// but anything that somehow does must fail rather than strand a
	// waiter.
	for {
		o, ok := t.inbox.Pop()
		if !ok {
			break
		}
		t.failAdmit(o)
	}
}

// PollerPolicy returns the probe policy a dedicated polling thread should
// run: PAD-Tree spins (always probe), PAD+-Tree shares the tree's
// workload-aware policy (which is fed every submission either way).
func (t *Tree) PollerPolicy() sched.Policy {
	if t.cfg.Poller == PollerDedicatedModel {
		return t.policy
	}
	return sched.NewAlwaysProbe()
}

// RunPoller executes a dedicated polling thread (PAD / PAD+, Figure 11).
// Call in its own environment; it exits when the main Run loop exits.
func (t *Tree) RunPoller(env Env, policy sched.Policy) {
	t.pollerLive = true
	costs := &t.cfg.Costs
	for t.running || !t.stopped.Load() {
		env.Work(metrics.CatSched, policy.Overhead())
		if policy.ShouldProbe(env.Now(), t.ioBlocked) {
			t.probePoller(env, policy)
		} else if t.cfg.Poller == PollerDedicatedModel {
			// Model-gated poller sleeps when nothing is predicted,
			// keeping its CPU footprint near zero (PAD+).
			env.Sleep(5 * time.Microsecond)
		} else {
			env.Work(metrics.CatSched, costs.IdleSpin)
		}
	}
	t.pollerLive = false
}

// probe polls the completion queue from the working thread.
func (t *Tree) probe(policy sched.Policy) int {
	t.charge(metrics.CatNVMe, t.cfg.Costs.ProbeCall)
	n := t.qp.Probe(t.cfg.MaxProbeBatch)
	t.charge(metrics.CatNVMe, time.Duration(n)*t.cfg.Costs.ProbePerCQE)
	now := t.now()
	policy.OnProbe(now)
	t.stats.Probes++
	if n > 0 {
		t.stats.ProbeHits++
		t.stats.CompletionsSeen += uint64(n)
		// Only hitting probes are traced: misses can fire every scheduler
		// step and would flush the ring without adding information (the
		// Probes counter keeps the totals).
		if t.tr != nil {
			t.tr.Emit(tcProbe, classNone, 0, uint64(n), int64(now), trace.Instant)
		}
	}
	return n
}

// probePoller polls from a dedicated thread, paying the cross-thread
// handoff penalty per completion.
func (t *Tree) probePoller(env Env, policy sched.Policy) int {
	env.Work(metrics.CatNVMe, t.cfg.Costs.ProbeCall)
	n := t.qp.Probe(t.cfg.MaxProbeBatch)
	if n > 0 {
		env.Work(metrics.CatNVMe, time.Duration(n)*t.cfg.Costs.ProbePerCQE)
		env.Work(metrics.CatSync, time.Duration(n)*t.cfg.Costs.CrossThreadHandoff)
	}
	policy.OnProbe(env.Now())
	t.stats.Probes++
	if n > 0 {
		t.stats.ProbeHits++
		t.stats.CompletionsSeen += uint64(n)
	}
	return n
}

// resubmitStalled retries operations whose Submit hit a full queue.
func (t *Tree) resubmitStalled() {
	if len(t.stalled) == 0 {
		return
	}
	batch := t.stalled
	t.stalled = nil
	now := t.now()
	for _, o := range batch {
		t.pushReady(o, now)
	}
}

// ─── Operation processing ───────────────────────────────────────────────

// DebugTraceSeq enables transition tracing for one op seq (diagnostics).
var DebugTraceSeq uint64

// process runs o's transitions until it leaves the ready set (§III-A:
// process(c) is the maximal sequence of transitions until the operation
// completes or enters a waiting state).
func (t *Tree) process(o *Op) {
	for {
		if DebugTraceSeq != 0 && o.seq == DebugTraceSeq {
			fmt.Printf("TRACE op%d state=%d cur=%d depth=%d held=%v err=%v\n", o.seq, o.state, o.cur, o.depth, o.held, o.pendingErr)
		}
		if o.pendingErr != nil && o.state != stSyncRun {
			t.failOp(o, o.pendingErr)
			return
		}
		switch o.state {
		case stEntry:
			if o.kind == KindNop {
				// Pipeline no-op: complete without touching the index.
				t.finishOp(o)
				return
			}
			o.cur = t.rootID
			o.depth = 0
			o.prevNode = nil
			o.state = stChildGranted
			if !t.acquireLatch(o, o.cur, t.latchModeFor(o, t.height-1)) {
				return // latch-blocked; grant moves us on
			}

		case stChildGranted:
			if o.depth == 0 && o.cur != t.rootID {
				// The root split while we were queued: restart from the
				// real root (entry-latch recheck; see package docs).
				t.releaseLatch(o, o.cur)
				o.state = stEntry
				continue
			}
			// Searches, scans, deletes and optimistic updates release the
			// previous node as soon as the child latch is granted;
			// pessimistic updates keep it until the child is known not to
			// split.
			if !t.pessimisticCoupling(o) {
				t.releaseAllExcept(o, o.cur)
				o.prevNode = nil
			}
			o.state = stReadNode

		case stReadNode:
			data, ok := t.lookupPage(o.cur)
			if !ok {
				if o.ioData != nil && o.ioFor == o.cur {
					data = o.ioData
				} else {
					o.ioData = nil
					if !t.submitRead(o) {
						return // stalled or waiting
					}
					return // I/O-blocked
				}
			}
			o.ioData = nil
			if o.kind == KindSearch {
				// Point lookups never mutate, so they read the sealed page
				// image directly instead of materializing a Node — the
				// binary search runs over the encoded slot array and only
				// the matched value is copied out. Same page validation,
				// same latch protocol, same CPU charge; zero decode
				// allocations on a buffer hit.
				if t.searchStep(o, data) {
					return
				}
				continue
			}
			node, err := storage.DecodeNode(o.cur, data)
			if err != nil {
				t.failOp(o, err)
				return
			}
			t.charge(metrics.CatRealWork, t.cfg.Costs.NodeVisit)
			o.curNode = node
			o.state = stProcess

		case stProcess:
			if done := t.processNode(o); done {
				return
			}

		case stWriteNext:
			if o.wIdx >= len(o.writes) {
				t.finishOp(o)
				return
			}
			if !t.submitOpWrite(o) {
				return // stalled or waiting
			}
			return // I/O-blocked until this write completes

		case stSyncRun:
			if t.runSync(o) {
				return
			}

		case stDone:
			return

		default:
			panic(fmt.Sprintf("core: bad op state %d", o.state))
		}
	}
}

// searchStep advances a point search one level using the raw page image
// (see the KindSearch branch in process). Returns true when the op left
// the ready set (completed, failed, or latch-blocked on the child).
func (t *Tree) searchStep(o *Op, data []byte) bool {
	step, err := storage.SearchPage(data, o.key)
	if err != nil {
		t.failOp(o, err)
		return true
	}
	t.charge(metrics.CatRealWork, t.cfg.Costs.NodeVisit)
	if step.Leaf {
		o.Res.Found = step.Found
		o.Res.Value = step.Value
		t.finishOp(o)
		return true
	}
	o.cur = step.Child
	o.depth++
	o.state = stChildGranted
	if !t.acquireLatch(o, step.Child, latch.Shared) {
		return true // latch-blocked
	}
	return false
}

// processNode executes the index logic on o.curNode. Returns true when
// the op left the ready set (done or waiting).
func (t *Tree) processNode(o *Op) bool {
	node := o.curNode
	isUpd := o.kind == KindInsert || o.kind == KindUpdate

	if isUpd && node.IsLeaf() && !o.pessimistic && t.needsSplit(o, node) {
		// Optimistic descent found a leaf that must split: restart with
		// exclusive coupling (rare; see Op.pessimistic).
		if o.kind == KindUpdate {
			if _, found := node.SearchLeaf(o.key); !found {
				o.Res.Found = false
				t.finishOp(o)
				return true
			}
		}
		o.pessimistic = true
		t.releaseAll(o)
		o.state = stEntry
		return false
	}

	if isUpd && o.pessimistic && t.needsSplit(o, node) {
		if o.kind == KindUpdate {
			// Confirm the key exists before splitting on its behalf.
			if node.IsLeaf() {
				if _, found := node.SearchLeaf(o.key); !found {
					o.Res.Found = false
					t.finishOp(o)
					return true
				}
			}
		}
		t.splitCurrent(o)
		// Re-process the (possibly new) current node.
		return false
	}

	if node.IsLeaf() {
		return t.leafAction(o)
	}

	// Inner node: the child to follow.
	if isUpd && o.pessimistic {
		// This node is split-safe: ancestors not pinned by modifications
		// can be released (latch coupling for updates, §III-B).
		t.releaseSafeAncestors(o)
	}
	idx := node.ChildIndex(o.key)
	child := node.Children[idx]
	o.prevNode = node
	o.cur = child
	o.depth++
	o.state = stChildGranted
	if !t.acquireLatch(o, child, t.latchModeFor(o, int(node.Level)-1)) {
		return true // latch-blocked
	}
	return false
}

// latchModeFor returns the latch mode for a node at the given level on
// o's traversal: searches take shared latches everywhere; optimistic
// updates take shared latches on inner nodes and exclusive only on the
// leaf; pessimistic updates take exclusive everywhere.
func (t *Tree) latchModeFor(o *Op, level int) latch.Mode {
	if o.kind == KindSearch || o.kind == KindRange {
		return latch.Shared
	}
	if o.pessimistic || level <= 0 {
		return latch.Exclusive
	}
	return latch.Shared
}

// pessimisticCoupling reports whether o keeps ancestors latched across
// child acquisition.
func (t *Tree) pessimisticCoupling(o *Op) bool {
	return (o.kind == KindInsert || o.kind == KindUpdate) && o.pessimistic
}

// leafAction applies o to the leaf in o.curNode (which fits the change;
// splits were handled before entering here).
func (t *Tree) leafAction(o *Op) bool {
	node := o.curNode
	costs := &t.cfg.Costs
	switch o.kind {
	case KindSearch:
		if i, found := node.SearchLeaf(o.key); found {
			o.Res.Found = true
			o.Res.Value = node.Vals[i]
		}
		t.finishOp(o)
		return true

	case KindRange:
		i, _ := node.SearchLeaf(o.key)
		for ; i < len(node.Keys); i++ {
			if node.Keys[i] > o.endKey {
				t.finishOp(o)
				return true
			}
			o.Res.Pairs = append(o.Res.Pairs, KV{Key: node.Keys[i], Value: node.Vals[i]})
			if o.limit > 0 && len(o.Res.Pairs) >= o.limit {
				t.finishOp(o)
				return true
			}
		}
		if node.Next == storage.NilPage {
			t.finishOp(o)
			return true
		}
		// Continue into the right sibling with latch coupling; every key
		// there exceeds everything in this leaf, so scanning resumes from
		// the sibling's first slot.
		o.key = 0
		o.prevNode = node
		o.cur = node.Next
		o.depth++
		o.state = stChildGranted
		if !t.acquireLatch(o, o.cur, o.mode) {
			return true
		}
		return false

	case KindInsert, KindUpdate:
		if len(o.value) > storage.MaxValueSize {
			t.failOp(o, ErrValueTooLarge)
			return true
		}
		i, found := node.SearchLeaf(o.key)
		if o.kind == KindUpdate && !found {
			o.Res.Found = false
			t.finishOp(o)
			return true
		}
		_ = i
		replaced := node.InsertLeaf(o.key, o.value)
		o.Res.Found = replaced
		if !replaced {
			t.numKeys++
		}
		t.charge(metrics.CatRealWork, costs.LeafMutate)
		t.markModified(o, node)
		return t.beginWriteback(o)

	case KindDelete:
		i, found := node.SearchLeaf(o.key)
		if !found {
			t.finishOp(o)
			return true
		}
		node.DeleteLeafAt(i)
		o.Res.Found = true
		t.numKeys--
		t.charge(metrics.CatRealWork, costs.LeafMutate)
		t.markModified(o, node)
		return t.beginWriteback(o)

	default:
		panic("core: unexpected kind in leafAction: " + o.kind.String())
	}
}

// needsSplit decides whether the current node must be split before the
// insert/update proceeds (top-down preemptive splitting; see DESIGN.md).
func (t *Tree) needsSplit(o *Op, node *storage.Node) bool {
	if !node.IsLeaf() {
		return node.NumKeys() >= storage.InnerMaxKeys-innerSplitMargin
	}
	if len(o.value) > storage.MaxValueSize {
		return false // leafAction will fail the op cleanly
	}
	if i, found := node.SearchLeaf(o.key); found {
		return !node.LeafFitsReplace(i, len(o.value))
	}
	return !node.LeafFits(len(o.value))
}

// splitCurrent splits o.curNode (held X), inserting separators into the
// held parent (creating a new root when the current node is the root).
// For leaves it loops byte-balanced splits until the incoming value fits
// the half covering the key. All modified nodes stay latched and are
// queued for write-back.
func (t *Tree) splitCurrent(o *Op) {
	node := o.curNode
	parent := o.prevNode
	costs := &t.cfg.Costs

	if parent == nil {
		// Root split: hoist a new root above the current node.
		newRootID := t.alloc.Alloc()
		newRoot := storage.NewInner(newRootID, node.Level+1)
		newRoot.Children = []storage.PageID{node.ID}
		if !t.acquireLatch(o, newRootID, latch.Exclusive) {
			panic("core: fresh root latch contended")
		}
		t.markModified(o, newRoot)
		hoisted, newHeight := newRootID, t.height+1
		prevCommit := o.commit
		o.commit = func() {
			if prevCommit != nil {
				prevCommit()
			}
			t.rootID = hoisted
			t.height = newHeight
		}
		parent = newRoot
		o.prevNode = newRoot
	}

	if !node.IsLeaf() {
		rightID := t.alloc.Alloc()
		sep, right := node.SplitInner(rightID)
		if !t.acquireLatch(o, rightID, latch.Exclusive) {
			panic("core: fresh split node latch contended")
		}
		parent.InsertInner(sep, rightID)
		t.charge(metrics.CatRealWork, costs.Split)
		t.stats.Splits++
		t.markModified(o, node)
		t.markModified(o, right)
		t.markModified(o, parent)
		if o.key >= sep {
			o.curNode = right
			o.cur = rightID
		}
		return
	}

	// Leaf: split until the half covering the key fits the value.
	target := node
	t.markModified(o, parent)
	for {
		var fits bool
		if i, found := target.SearchLeaf(o.key); found {
			fits = target.LeafFitsReplace(i, len(o.value))
		} else {
			fits = target.LeafFits(len(o.value))
		}
		if fits {
			break
		}
		if target.NumKeys() < 2 {
			// By the MaxValueSize bound a single-entry leaf always fits
			// one more maximal value; reaching here is a logic bug.
			panic("core: unsplittable leaf cannot fit value")
		}
		rightID := t.alloc.Alloc()
		sep, right := target.SplitLeaf(rightID)
		if !t.acquireLatch(o, rightID, latch.Exclusive) {
			panic("core: fresh split leaf latch contended")
		}
		parent.InsertInner(sep, rightID)
		t.charge(metrics.CatRealWork, costs.Split)
		t.stats.Splits++
		t.markModified(o, target)
		t.markModified(o, right)
		if o.key >= sep {
			target = right
		}
	}
	if parent.NumKeys() > storage.InnerMaxKeys {
		panic("core: parent overflow after leaf multi-split")
	}
	o.curNode = target
	o.cur = target.ID
}

// markModified records node for write-back (ordered children-first at
// queue-build time) and pins the op as a write-latch holder for the
// prioritized scheduler.
func (t *Tree) markModified(o *Op, node *storage.Node) {
	for _, m := range o.modified {
		if m == node {
			return
		}
	}
	o.modified = append(o.modified, node)
	o.holdsWrite = true
}

// releaseSafeAncestors drops latches on every held node above the current
// one that was not modified (modified pages stay latched until their
// writes complete so no reader can observe in-flight data).
func (t *Tree) releaseSafeAncestors(o *Op) {
	if len(o.held) <= 1 {
		return
	}
	kept := o.held[:0]
	for _, h := range o.held {
		if h.id == o.cur || o.isModified(h.id) {
			kept = append(kept, h)
			continue
		}
		t.charge(metrics.CatSync, t.cfg.Costs.LatchOp)
		t.latches.Release(h.id, h.mode)
	}
	o.held = kept
}

func (o *Op) isModified(id storage.PageID) bool {
	for _, m := range o.modified {
		if m.ID == id {
			return true
		}
	}
	return false
}

// beginWriteback finishes an update operation: strong mode queues one
// write per modified page (leaves before parents, meta last) and moves
// the op to the write pipeline; weak mode stores the pages into the
// read-write buffer and completes immediately, scheduling evicted victims
// in the background (§III-C). The return value follows the processNode
// convention: true iff the op left the ready set.
func (t *Tree) beginWriteback(o *Op) bool {
	if t.cfg.Persistence == WeakPersistence {
		for _, n := range o.modified {
			t.bufferWrite(n.ID, n.Encode())
		}
		t.finishOp(o)
		return true
	}
	// Strong: order children-first so a parent never points to an
	// unwritten child on the device.
	mods := append([]*storage.Node(nil), o.modified...)
	for i := 0; i < len(mods); i++ {
		for j := i + 1; j < len(mods); j++ {
			if mods[j].Level < mods[i].Level {
				mods[i], mods[j] = mods[j], mods[i]
			}
		}
	}
	for _, n := range mods {
		o.writes = append(o.writes, writeReq{id: n.ID, data: n.Encode()})
	}
	if o.commit != nil {
		// Root changed: persist the new meta image after everything else.
		meta := t.pendingMeta(o)
		o.writes = append(o.writes, writeReq{id: 0, data: meta.Encode()})
	}
	o.state = stWriteNext
	return false // continue in process(): stWriteNext issues the first write
}

// pendingMeta builds the meta image as it must look after o commits.
func (t *Tree) pendingMeta(o *Op) *storage.Meta {
	// The commit closure updates rootID/height; peek at the new values by
	// inspecting the newest modified root-level node.
	root := t.rootID
	height := t.height
	for _, n := range o.modified {
		if int(n.Level)+1 > height {
			height = int(n.Level) + 1
			root = n.ID
		}
	}
	return &storage.Meta{
		Root:      root,
		Height:    uint8(height),
		Watermark: t.alloc.Watermark(),
		NumKeys:   t.numKeys,
		SyncEpoch: t.syncEpoch,
	}
}

// ─── Page access ────────────────────────────────────────────────────────

// lookupPage consults the buffers (and, in weak mode, the in-flight
// write-back table) for the page image of id.
func (t *Tree) lookupPage(id storage.PageID) ([]byte, bool) {
	if t.rw != nil {
		if data, ok := t.rw.Get(id); ok {
			return data, true
		}
		if data, ok := t.inflight[id]; ok {
			// Refill the buffer: content is identical to what is being
			// persisted right now.
			if victim, ev := t.rw.FillOnRead(id, data); ev {
				t.queueBG(victim)
			}
			return data, true
		}
		return nil, false
	}
	if data, ok := t.ro.Get(id); ok {
		return data, true
	}
	return nil, false
}

// bufferWrite stores a weak-mode page update and schedules any evicted
// dirty victim for background write-back.
func (t *Tree) bufferWrite(id storage.PageID, data []byte) {
	if victim, ev := t.rw.Write(id, data); ev {
		t.queueBG(victim)
	}
	// With buffering disabled (capacity 0) the write must still reach the
	// device: treat it as its own write-back.
	if t.rw.Len() == 0 {
		t.queueBG(buffer.Dirty{ID: id, Data: data, Epoch: 0})
	}
}

func (t *Tree) queueBG(d buffer.Dirty) {
	t.bgQueue = append(t.bgQueue, d)
	t.drainBG()
}

// drainBG submits queued background write-backs, leaving the rest queued
// when the submission queue is full.
func (t *Tree) drainBG() {
	for len(t.bgQueue) > 0 {
		d := t.bgQueue[0]
		data := d.Data
		id := d.ID
		epoch := d.Epoch
		t.inflight[id] = data
		submitted := t.now()
		cmd := &nvme.Command{Op: nvme.OpWrite, LBA: uint64(id), Blocks: 1, Buf: data}
		cmd.Callback = func(c nvme.Completion) {
			t.ioBlocked--
			now := t.now()
			t.policy.OnDetected(nvme.OpWrite, submitted, now)
			if t.tr != nil {
				t.tr.Emit(tcIOWrite, classNone, 0, uint64(id), int64(submitted), int64(now.Sub(submitted)))
			}
			if cur, ok := t.inflight[id]; ok && &cur[0] == &data[0] {
				delete(t.inflight, id)
			}
			if epoch != 0 {
				t.rw.MarkClean(id, epoch)
			}
		}
		t.charge(metrics.CatNVMe, t.cfg.Costs.IOSubmit)
		if err := t.qp.Submit(cmd); err != nil {
			delete(t.inflight, id)
			return // queue full; retry on a later pass
		}
		t.policy.OnSubmit(nvme.OpWrite, submitted)
		t.ioBlocked++
		t.stats.WritesIssued++
		t.bgQueue = t.bgQueue[1:]
	}
}

// submitRead issues the read for o.cur. Returns false if the op stalled
// on a full queue (it re-queues via the stalled list).
func (t *Tree) submitRead(o *Op) bool {
	buf := make([]byte, storage.PageSize)
	submitted := t.now()
	id := o.cur
	cmd := &nvme.Command{Op: nvme.OpRead, LBA: uint64(id), Blocks: 1, Buf: buf}
	cmd.Callback = func(c nvme.Completion) {
		t.ioBlocked--
		now := t.now()
		t.policy.OnDetected(nvme.OpRead, submitted, now)
		o.ioWait += now.Sub(submitted)
		if t.tr != nil {
			t.tr.Emit(tcIORead, uint16(o.kind), o.seq, uint64(id), int64(submitted), int64(now.Sub(submitted)))
		}
		if c.Err != nil {
			o.pendingErr = c.Err
		} else {
			o.ioData = buf
			o.ioFor = id
			t.fillOnRead(id, buf)
		}
		t.pushReady(o, now)
	}
	t.charge(metrics.CatNVMe, t.cfg.Costs.IOSubmit)
	if err := t.qp.Submit(cmd); err != nil {
		t.stalled = append(t.stalled, o)
		return false
	}
	t.policy.OnSubmit(nvme.OpRead, submitted)
	t.ioBlocked++
	t.stats.ReadsIssued++
	return true
}

func (t *Tree) fillOnRead(id storage.PageID, data []byte) {
	if t.rw != nil {
		if victim, ev := t.rw.FillOnRead(id, data); ev {
			t.queueBG(victim)
		}
		return
	}
	t.ro.FillOnRead(id, data)
}

// submitOpWrite issues o.writes[o.wIdx] (strong mode). On completion the
// page enters the read-only buffer (§III-C's fill-on-write-complete rule)
// and the op advances to the next write.
func (t *Tree) submitOpWrite(o *Op) bool {
	w := o.writes[o.wIdx]
	submitted := t.now()
	cmd := &nvme.Command{Op: nvme.OpWrite, LBA: uint64(w.id), Blocks: 1, Buf: w.data}
	cmd.Callback = func(c nvme.Completion) {
		t.ioBlocked--
		now := t.now()
		t.policy.OnDetected(nvme.OpWrite, submitted, now)
		o.ioWait += now.Sub(submitted)
		if t.tr != nil {
			t.tr.Emit(tcIOWrite, uint16(o.kind), o.seq, uint64(w.id), int64(submitted), int64(now.Sub(submitted)))
		}
		if c.Err != nil {
			o.pendingErr = c.Err
		} else {
			if w.id != 0 {
				t.ro.FillOnWriteComplete(w.id, w.data)
			}
			o.wIdx++
		}
		t.pushReady(o, now)
	}
	t.charge(metrics.CatNVMe, t.cfg.Costs.IOSubmit)
	if err := t.qp.Submit(cmd); err != nil {
		t.stalled = append(t.stalled, o)
		return false
	}
	t.policy.OnSubmit(nvme.OpWrite, submitted)
	t.ioBlocked++
	t.stats.WritesIssued++
	return true
}

// ─── Sync (weak persistence §III-C) ─────────────────────────────────────

// runSync drives a sync operation. Returns true when the op left the
// ready set.
func (t *Tree) runSync(o *Op) bool {
	if o.pendingErr != nil {
		t.failOp(o, o.pendingErr)
		return true
	}
	if !o.syncStarted {
		o.syncStarted = true
		if t.rw != nil {
			o.syncQueue = t.rw.DirtyPages()
		}
		t.syncEpoch++
		meta := &storage.Meta{
			Root:      t.rootID,
			Height:    uint8(t.height),
			Watermark: t.alloc.Watermark(),
			NumKeys:   t.numKeys,
			SyncEpoch: t.syncEpoch,
		}
		o.syncQueue = append(o.syncQueue, buffer.Dirty{ID: 0, Data: meta.Encode()})
	}
	// Submit as much of the queue as fits.
	for len(o.syncQueue) > 0 {
		d := o.syncQueue[0]
		id, data, epoch := d.ID, d.Data, d.Epoch
		submitted := t.now()
		cmd := &nvme.Command{Op: nvme.OpWrite, LBA: uint64(id), Blocks: 1, Buf: data}
		cmd.Callback = func(c nvme.Completion) {
			t.ioBlocked--
			now := t.now()
			t.policy.OnDetected(nvme.OpWrite, submitted, now)
			o.ioWait += now.Sub(submitted)
			if t.tr != nil {
				t.tr.Emit(tcIOWrite, uint16(o.kind), o.seq, uint64(id), int64(submitted), int64(now.Sub(submitted)))
			}
			o.syncOutstanding--
			if c.Err != nil {
				o.pendingErr = c.Err
			} else if id != 0 && t.rw != nil {
				t.rw.MarkClean(id, epoch)
			}
			t.pushReady(o, now)
		}
		t.charge(metrics.CatNVMe, t.cfg.Costs.IOSubmit)
		if err := t.qp.Submit(cmd); err != nil {
			break // queue full: resume when completions drain
		}
		t.policy.OnSubmit(nvme.OpWrite, submitted)
		t.ioBlocked++
		t.stats.WritesIssued++
		o.syncOutstanding++
		o.syncQueue = o.syncQueue[1:]
	}
	if len(o.syncQueue) == 0 && o.syncOutstanding == 0 {
		if !o.syncFlushSent {
			o.syncFlushSent = true
			submitted := t.now()
			cmd := &nvme.Command{Op: nvme.OpFlush}
			cmd.Callback = func(c nvme.Completion) {
				t.ioBlocked--
				now := t.now()
				t.policy.OnDetected(nvme.OpRead, submitted, now)
				o.ioWait += now.Sub(submitted)
				if t.tr != nil {
					t.tr.Emit(tcIOWrite, uint16(o.kind), o.seq, 0, int64(submitted), int64(now.Sub(submitted)))
				}
				o.syncFlushDone = true
				if c.Err != nil {
					o.pendingErr = c.Err
				}
				t.pushReady(o, now)
			}
			t.charge(metrics.CatNVMe, t.cfg.Costs.IOSubmit)
			if err := t.qp.Submit(cmd); err != nil {
				o.syncFlushSent = false
				t.stalled = append(t.stalled, o)
				return true
			}
			t.policy.OnSubmit(nvme.OpRead, submitted)
			t.ioBlocked++
			return true
		}
		if o.syncFlushDone {
			t.finishOp(o)
			return true
		}
	}
	return true // waiting for completions
}

// ─── Latch helpers ──────────────────────────────────────────────────────

// acquireLatch requests a latch for o, returning true on immediate grant.
// On a queued request the op's reusable grant callback (an op waits on at
// most one latch at a time, so the request parameters ride in
// o.pendingLatch rather than a fresh closure) pushes o back to ready.
func (t *Tree) acquireLatch(o *Op, id storage.PageID, mode latch.Mode) bool {
	t.charge(metrics.CatSync, t.cfg.Costs.LatchOp)
	o.pendingLatch = heldLatch{id: id, mode: mode}
	granted := t.latches.Acquire(id, mode, o.grantFn)
	if granted {
		o.held = append(o.held, o.pendingLatch)
	} else {
		o.latchFrom = t.now() // contended: wait starts now
	}
	return granted
}

// grantLatch is the body of every op's reusable grant callback.
func (t *Tree) grantLatch(o *Op) {
	now := t.now()
	if w := now.Sub(o.latchFrom); w > 0 {
		o.latchWait += w
		if t.tr != nil {
			t.tr.Emit(tcLatchWait, uint16(o.kind), o.seq, uint64(o.pendingLatch.id), int64(o.latchFrom), int64(w))
		}
	}
	o.held = append(o.held, o.pendingLatch)
	t.pushReady(o, now)
}

// releaseLatch drops one held latch by id.
func (t *Tree) releaseLatch(o *Op, id storage.PageID) {
	for i, h := range o.held {
		if h.id == id {
			o.held = append(o.held[:i], o.held[i+1:]...)
			t.charge(metrics.CatSync, t.cfg.Costs.LatchOp)
			t.latches.Release(id, h.mode)
			return
		}
	}
	panic(fmt.Sprintf("core: releasing latch not held: page %d", id))
}

// releaseAllExcept drops every held latch except the one on keep.
func (t *Tree) releaseAllExcept(o *Op, keep storage.PageID) {
	kept := o.held[:0]
	for _, h := range o.held {
		if h.id == keep {
			kept = append(kept, h)
			continue
		}
		t.charge(metrics.CatSync, t.cfg.Costs.LatchOp)
		t.latches.Release(h.id, h.mode)
	}
	o.held = kept
}

// releaseAll drops every held latch.
func (t *Tree) releaseAll(o *Op) {
	for _, h := range o.held {
		t.charge(metrics.CatSync, t.cfg.Costs.LatchOp)
		t.latches.Release(h.id, h.mode)
	}
	o.held = o.held[:0]
}

// ─── Completion ─────────────────────────────────────────────────────────

func (t *Tree) finishOp(o *Op) {
	if o.pendingErr != nil {
		t.failOp(o, o.pendingErr)
		return
	}
	if o.commit != nil {
		o.commit()
		o.commit = nil
	}
	t.releaseAll(o)
	o.state = stDone
	o.Res.Completed = t.now()
	t.liveOps--
	delete(t.liveSet, o.seq)
	t.stats.Completed[o.kind]++
	lat := o.Res.Latency()
	t.stats.Latency.Record(lat)
	if o.kind == KindSearch || o.kind == KindRange {
		t.stats.SearchLatency.Record(lat)
	} else {
		t.stats.UpdateLatency.Record(lat)
	}
	t.completeOp(o)
}

func (t *Tree) failOp(o *Op, err error) {
	o.Res.Err = err
	t.releaseAll(o)
	o.state = stDone
	o.Res.Completed = t.now()
	t.liveOps--
	delete(t.liveSet, o.seq)
	t.stats.Completed[o.kind]++
	t.completeOp(o)
}

// completeOp records the op's stage timings and runs its completion
// callback, timing the delivery. The callback may Release o back to the
// pool, so every field used afterwards is captured first.
func (t *Tree) completeOp(o *Op) {
	t.recordStages(o)
	if t.tr != nil {
		t.tr.Emit(tcOp, uint16(o.kind), o.seq, uint64(o.key), int64(o.Res.Admitted), int64(o.Res.Latency()))
	}
	kind, seq, done := o.kind, o.seq, o.Res.Completed
	if o.Done != nil {
		o.Done(o)
		d := t.now().Sub(done)
		t.stats.Stages.Record(metrics.StageDeliver, int(kind), d)
		if t.tr != nil && d > 0 {
			t.tr.Emit(tcDeliver, uint16(kind), seq, 0, int64(done), int64(d))
		}
	}
}

// recordStages folds a completing op's timestamps into the per-stage
// histograms. Admit-wait, latch-wait and io-wait are recorded only when
// the op actually waited there (see Stats.Stages).
func (t *Tree) recordStages(o *Op) {
	st := t.stats.Stages
	k := int(o.kind)
	if aw := o.enqueuedAt.Sub(o.Res.Admitted); aw > 0 {
		st.Record(metrics.StageAdmitWait, k, aw)
	}
	st.Record(metrics.StageInbox, k, o.drainedAt.Sub(o.enqueuedAt))
	st.Record(metrics.StageQueueWait, k, o.queueWait)
	if o.latchWait > 0 {
		st.Record(metrics.StageLatchWait, k, o.latchWait)
	}
	if o.ioWait > 0 {
		st.Record(metrics.StageIOWait, k, o.ioWait)
	}
	st.Record(metrics.StageTotal, k, o.Res.Latency())
}

// DebugState summarizes internal state for diagnostics.
func (t *Tree) DebugState() string {
	return fmt.Sprintf("live=%d ioBlocked=%d ready=%d inbox=%d stalled=%d bg=%d inflight=%d latchNodes=%d",
		t.liveOps, t.ioBlocked, t.ready.Len(), t.inbox.Len(), len(t.stalled), len(t.bgQueue), len(t.inflight), t.latches.ActiveNodes())
}

// DebugCounters reports push/pop counts.
func (t *Tree) DebugCounters() (uint64, uint64) { return t.dbgPush, t.dbgPop }

// DebugOps dumps every live operation for diagnostics.
func (t *Tree) DebugOps() string {
	out := ""
	for _, o := range t.liveSet {
		out += fmt.Sprintf("op%d %s key=%d state=%d cur=%d depth=%d inReady=%v held=%v mods=%d\n",
			o.seq, o.kind, o.key, o.state, o.cur, o.depth, o.inReady, o.held, len(o.modified))
	}
	return out
}

// DebugLatches dumps the latch table for diagnostics.
func (t *Tree) DebugLatches() string { return t.latches.Dump() }
