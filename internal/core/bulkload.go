package core

import (
	"fmt"

	"github.com/patree/patree/internal/storage"
)

// ImageWriter is the direct-write access BulkLoad needs: SimDevice,
// RAMDevice, and nvme.Partition all provide it, so experiments can
// preload whole devices or individual shard partitions alike.
type ImageWriter interface {
	WriteAt(lba uint64, buf []byte)
}

// BulkLoad builds a tree bottom-up from sorted, unique key/value pairs and
// writes it directly into the device image (bypassing queues and
// virtual time), returning the meta image. It exists so experiments can
// preload the 10M+ key trees of the paper's evaluation without simulating
// millions of load operations; timed runs then Open the result.
//
// fill is the target occupancy of leaves and inner nodes in (0, 1];
// 0 selects 0.7, leaving headroom so early inserts don't split everything.
//
// When the writer also reports its size (every device and partition
// does), BulkLoad carves the same journal region Format lays out —
// provided the loaded tree stays clear of it — so a preloaded tree can
// run with Config.Journal like a formatted one. A writer without a
// known size yields a journal-less image, as before.
func BulkLoad(dev ImageWriter, pairs []KV, fill float64) (*storage.Meta, error) {
	if fill <= 0 {
		fill = 0.7
	}
	if fill > 1 {
		fill = 1
	}
	for i := 1; i < len(pairs); i++ {
		if pairs[i].Key <= pairs[i-1].Key {
			return nil, fmt.Errorf("core: bulk load pairs not sorted/unique at %d", i)
		}
	}
	next := storage.PageID(1)
	alloc := func() storage.PageID {
		id := next
		next++
		return id
	}
	writeNode := func(n *storage.Node) {
		dev.WriteAt(uint64(n.ID), n.Encode())
	}

	// Level 0: leaves.
	targetBytes := int(fill * float64(storage.PageSize))
	var levelIDs []storage.PageID
	var levelMin []uint64
	var leaves []*storage.Node
	cur := storage.NewLeaf(alloc())
	for _, kv := range pairs {
		if len(kv.Value) > storage.MaxValueSize {
			return nil, storage.ErrValueTooLarge
		}
		if cur.NumKeys() > 0 && (cur.LeafUsed()+12+len(kv.Value) > targetBytes || !cur.LeafFits(len(kv.Value))) {
			leaves = append(leaves, cur)
			nl := storage.NewLeaf(alloc())
			cur.Next = nl.ID
			cur = nl
		}
		cur.InsertLeaf(kv.Key, kv.Value)
	}
	leaves = append(leaves, cur)
	for _, l := range leaves {
		writeNode(l)
		levelIDs = append(levelIDs, l.ID)
		if l.NumKeys() > 0 {
			levelMin = append(levelMin, l.Keys[0])
		} else {
			levelMin = append(levelMin, 0)
		}
	}

	// Upper levels.
	maxInner := int(fill * float64(storage.InnerMaxKeys))
	if maxInner < 2 {
		maxInner = 2
	}
	level := uint8(1)
	for len(levelIDs) > 1 {
		var nextIDs []storage.PageID
		var nextMin []uint64
		var inners []*storage.Node
		for i := 0; i < len(levelIDs); {
			n := storage.NewInner(alloc(), level)
			n.Children = []storage.PageID{levelIDs[i]}
			first := levelMin[i]
			i++
			for i < len(levelIDs) && n.NumKeys() < maxInner {
				n.Keys = append(n.Keys, levelMin[i])
				n.Children = append(n.Children, levelIDs[i])
				i++
			}
			inners = append(inners, n)
			nextIDs = append(nextIDs, n.ID)
			nextMin = append(nextMin, first)
		}
		// Link siblings before writing: like the leaf level, every level
		// forms a B-link chain (SplitInner maintains it from here on).
		for j, n := range inners {
			if j+1 < len(inners) {
				n.Next = inners[j+1].ID
			}
			writeNode(n)
		}
		levelIDs, levelMin = nextIDs, nextMin
		level++
	}

	meta := &storage.Meta{
		Root:      levelIDs[0],
		Height:    level,
		Watermark: next,
		NumKeys:   uint64(len(pairs)),
	}
	if sized, ok := dev.(interface{ NumBlocks() uint64 }); ok {
		if start, blocks := walGeometry(sized.NumBlocks()); blocks > 0 && uint64(next) <= start {
			meta.WALStart, meta.WALBlocks, meta.WALGen = start, blocks, 1
			// Zero the region's first block so stale frames from a previous
			// life of the device can never be replayed (same as Format).
			dev.WriteAt(start, make([]byte, storage.PageSize))
		}
	}
	dev.WriteAt(0, meta.Encode())
	return meta, nil
}
