package core

import (
	"fmt"
	"testing"

	"github.com/patree/patree/internal/storage"
)

// These tests drive the pubTable and the optimistic descent directly with
// hand-built page images, so the mid-split states a live worker would race
// through in nanoseconds can be held still and probed: a stale parent
// route forcing a right-link escape, a poisoned frame, an unpublished
// page, split-bound replay over cascades.

// encLeaf builds a sealed leaf image with the given pairs and right link.
func encLeaf(id storage.PageID, next storage.PageID, pairs map[uint64]string) []byte {
	n := storage.NewLeaf(id)
	keys := make([]uint64, 0, len(pairs))
	for k := range pairs {
		keys = append(keys, k)
	}
	for i := range keys { // tiny insertion sort; test-sized inputs
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	for _, k := range keys {
		n.InsertLeaf(k, []byte(pairs[k]))
	}
	n.Next = next
	return n.Encode()
}

// encInner builds a sealed one-level inner image: children[i] covers keys
// < seps[i], the last child covers the rest.
func encInner(id storage.PageID, next storage.PageID, seps []uint64, children []storage.PageID) []byte {
	n := storage.NewInner(id, 1)
	n.Keys = append(n.Keys, seps...)
	n.Children = append(n.Children, children...)
	n.Next = next
	return n.Encode()
}

// splitStormTable builds the published state of a tree caught mid-split:
// the parent (page 2) still routes keys < 100 to leaf 3, but leaf 3 has
// already split at 50 into leaf 5 — its published bound says so and its
// right-link chains to 5. Key 60 therefore lives one escape to the right
// of where the stale parent sends a descent.
func splitStormTable() *pubTable {
	p := newPubTable()
	p.publishBounded(5, encLeaf(5, 4, map[uint64]string{60: "v60", 70: "v70"}), 100, true)
	p.publishBounded(3, encLeaf(3, 5, map[uint64]string{10: "v10", 20: "v20"}), 50, true)
	p.publishFill(4, encLeaf(4, storage.NilPage, map[uint64]string{100: "v100"}))
	p.publishFill(2, encInner(2, storage.NilPage, []uint64{100}, []storage.PageID{3, 4}))
	p.publishRoot(2, 2)
	return p
}

func TestReaderRightLinkEscape(t *testing.T) {
	p := splitStormTable()
	v, found, served := p.get(60)
	if !served || !found || string(v) != "v60" {
		t.Fatalf("get(60) = %q/%v served=%v, want v60/true via right-link escape", v, found, served)
	}
	if got := p.escapes.Load(); got == 0 {
		t.Fatalf("escape counter did not move; the descent must have routed stale")
	}
	if got := p.restarts.Load(); got != 0 {
		t.Fatalf("escape path restarted %d times; right-link repair should not restart", got)
	}
}

func TestReaderBrokenPathAbsenceProof(t *testing.T) {
	p := splitStormTable()
	// 65 is absent but falls in escaped leaf 5's range [50, 100): the leaf's
	// explicit bound plus a standing version is the absence proof.
	v, found, served := p.get(65)
	if !served || found {
		t.Fatalf("get(65) = %q/%v served=%v, want miss served on bounded leaf", v, found, served)
	}
}

func TestReaderUnbrokenAbsenceProof(t *testing.T) {
	p := splitStormTable()
	// 15 is routed directly (no escape); absence is proven by revalidating
	// the whole root-to-leaf path.
	if _, found, served := p.get(15); !served || found {
		t.Fatalf("get(15): served=%v found=%v, want clean miss", served, found)
	}
	if got := p.escapes.Load(); got != 0 {
		t.Fatalf("direct descent took %d escapes", got)
	}
}

func TestReaderEscapeChain(t *testing.T) {
	// Two splits since the parent last moved: 3 → 5 → 6. The descent must
	// chain two escapes.
	p := newPubTable()
	p.publishBounded(6, encLeaf(6, storage.NilPage, map[uint64]string{80: "v80"}), 0, false)
	p.publishBounded(5, encLeaf(5, 6, map[uint64]string{60: "v60"}), 75, true)
	p.publishBounded(3, encLeaf(3, 5, map[uint64]string{10: "v10"}), 50, true)
	p.publishFill(2, encInner(2, storage.NilPage, nil, []storage.PageID{3}))
	p.publishRoot(2, 2)
	if v, found, served := p.get(80); !served || !found || string(v) != "v80" {
		t.Fatalf("get(80) = %q/%v served=%v, want v80 after two escapes", v, found, served)
	}
	if got := p.escapes.Load(); got != 2 {
		t.Fatalf("escapes = %d, want 2", got)
	}
}

func TestReaderUnpublishedPageFallsBack(t *testing.T) {
	p := splitStormTable()
	p.retire(5) // the escape target leaves the buffer
	if _, _, served := p.get(60); served {
		t.Fatalf("get(60) served after its leaf was retired; must fall back")
	}
	if got := p.fallbackMiss.Load(); got == 0 {
		t.Fatalf("fallbackMiss did not move")
	}
}

func TestReaderNoRootFallsBack(t *testing.T) {
	p := newPubTable()
	if _, _, served := p.get(1); served {
		t.Fatalf("get served with no published root")
	}
	p = splitStormTable()
	p.withdrawRoot()
	if _, _, served := p.get(60); served {
		t.Fatalf("get served after root withdrawal")
	}
}

func TestReaderPoisonedFrameFallsBack(t *testing.T) {
	p := splitStormTable()
	// Poison the root frame mid-update forever: every loadImage fails, every
	// restart re-lands on it, and the read must give up to the pipeline.
	f := p.frame(2)
	f.ver.Add(1)
	if _, _, served := p.get(60); served {
		t.Fatalf("get served through a permanently odd seqlock version")
	}
	if got := p.fallbackRestarts.Load(); got == 0 {
		t.Fatalf("fallbackRestarts did not move")
	}
}

func TestReaderRetiredFrameNeverRevalidates(t *testing.T) {
	// The ABA this guards: a reader holds a frame, the page is evicted and
	// re-published under a fresh frame, and the reader's stale frame must
	// not validate. retire poisons the old frame's version before deleting
	// it, so the held pointer fails its version check forever.
	p := splitStormTable()
	f := p.frame(3)
	_, ver, ok := f.loadImage()
	if !ok {
		t.Fatalf("setup: frame 3 unreadable")
	}
	p.retire(3)
	p.publishBounded(3, encLeaf(3, 5, map[uint64]string{10: "other"}), 50, true)
	if f.ver.Load() == ver {
		t.Fatalf("retired frame's version survived re-publication — ABA window open")
	}
	if _, _, ok := f.loadImage(); ok {
		t.Fatalf("retired frame still serves an image")
	}
}

func TestReaderScanAcrossSplit(t *testing.T) {
	p := splitStormTable()
	pairs, served := p.scan(0, 200, 0)
	if !served {
		t.Fatalf("scan fell back on a fully published chain")
	}
	want := []struct {
		k uint64
		v string
	}{{10, "v10"}, {20, "v20"}, {60, "v60"}, {70, "v70"}, {100, "v100"}}
	if len(pairs) != len(want) {
		t.Fatalf("scan returned %d pairs, want %d: %v", len(pairs), len(want), pairs)
	}
	for i, w := range want {
		if pairs[i].Key != w.k || string(pairs[i].Value) != w.v {
			t.Fatalf("scan[%d] = (%d, %q), want (%d, %q)", i, pairs[i].Key, pairs[i].Value, w.k, w.v)
		}
	}
	// Limits bite mid-chain.
	pairs, served = p.scan(0, 200, 3)
	if !served || len(pairs) != 3 || pairs[2].Key != 60 {
		t.Fatalf("limited scan = %v served=%v, want first 3 pairs", pairs, served)
	}
	// A scan whose lo lands right of a stale route escapes like a get.
	pairs, served = p.scan(60, 70, 0)
	if !served || len(pairs) != 2 {
		t.Fatalf("scan[60,70] = %v served=%v, want v60,v70", pairs, served)
	}
}

func TestReaderScanUnpublishedChainFallsBack(t *testing.T) {
	p := splitStormTable()
	p.retire(4) // the chain's last leaf is gone from the table
	if _, served := p.scan(0, 200, 0); served {
		t.Fatalf("scan served across a retired chain link")
	}
	// But a scan that never reaches the hole still serves.
	if pairs, served := p.scan(0, 20, 0); !served || len(pairs) != 2 {
		t.Fatalf("scan[0,20] = %v served=%v, want served 2 pairs", pairs, served)
	}
}

func TestBoundsOfSplitReplay(t *testing.T) {
	p := newPubTable()
	// Page 7 is published with an existing bound [.., 90): the cascade
	// 7→8 at 40, then 8→9 at 70, must hand 90 down the chain.
	p.publishBounded(7, encLeaf(7, storage.NilPage, map[uint64]string{1: "x"}), 90, true)
	bounds := p.boundsOf([]pubSplit{
		{left: 7, right: 8, sep: 40},
		{left: 8, right: 9, sep: 70},
	})
	want := map[storage.PageID]struct {
		high uint64
		has  bool
	}{7: {40, true}, 8: {70, true}, 9: {90, true}}
	if len(bounds) != len(want) {
		t.Fatalf("boundsOf returned %d entries, want %d: %+v", len(bounds), len(want), bounds)
	}
	for _, b := range bounds {
		w, ok := want[b.id]
		if !ok || !b.known || b.hasHigh != w.has || b.highKey != w.high {
			t.Fatalf("bound for page %d = (%d,%v,known=%v), want (%d,%v)", b.id, b.highKey, b.hasHigh, b.known, w.high, w.has)
		}
	}
	// An unbounded (rightmost) left page hands "unbounded" to the right.
	bounds = p.boundsOf([]pubSplit{{left: 20, right: 21, sep: 500}})
	for _, b := range bounds {
		switch b.id {
		case 20:
			if !b.hasHigh || b.highKey != 500 {
				t.Fatalf("left of rightmost split: %+v, want bound 500", b)
			}
		case 21:
			if b.hasHigh {
				t.Fatalf("right of rightmost split inherited a bound: %+v", b)
			}
		}
	}
}

func TestPendingKeysFence(t *testing.T) {
	var pk pendingKeys
	keys := []uint64{0, 1, 42, 1 << 40, ^uint64(0)}
	for _, k := range keys {
		if pk.pending(k) {
			t.Fatalf("key %d pending before any inc", k)
		}
		pk.inc(k)
		pk.inc(k)
		if !pk.pending(k) {
			t.Fatalf("key %d not pending after inc", k)
		}
		pk.dec(k)
		if !pk.pending(k) {
			t.Fatalf("key %d cleared with one of two writes outstanding", k)
		}
		pk.dec(k)
		if pk.pending(k) {
			t.Fatalf("key %d still pending after matched decs", k)
		}
	}
}

func TestReaderLatencyHistogram(t *testing.T) {
	p := newPubTable()
	for i := 0; i < 100; i++ {
		p.recordLatency(1000) // 1µs
	}
	p.recordLatency(1 << 20) // ~1ms outlier
	s := p.snapshot()
	if s.Lat.Count != 101 {
		t.Fatalf("Count = %d, want 101", s.Lat.Count)
	}
	if m := s.Lat.Mean(); m < 900 || m > 20000 {
		t.Fatalf("Mean = %v, want ~1µs-ish", m)
	}
	if p50 := s.Lat.Percentile(50); p50 < 1000 || p50 > 4096 {
		t.Fatalf("P50 = %v, want within the 1µs bucket's bound", p50)
	}
	if p50, p999 := s.Lat.Percentile(50), s.Lat.Percentile(99.9); p999 < p50 {
		t.Fatalf("percentiles not monotone: p50=%v p99.9=%v", p50, p999)
	}
	var merged ReaderLatency
	merged.Merge(&s.Lat)
	merged.Merge(&s.Lat)
	if merged.Count != 202 {
		t.Fatalf("merged Count = %d, want 202", merged.Count)
	}
}

// TestReaderSplitStorm ingests an ascending key stream — every ~30th
// insert splits the rightmost leaf, and the cascade periodically splits
// inners and grows the root — probing the published table at the split
// frontier after every acknowledged write. Acked-write visibility must
// hold through every split, and deeper trees must keep serving. (The
// mid-publication interleavings a real concurrent reader can hit are
// covered deterministically by the hand-built tables above and
// statistically by the patree-level race suite.)
func TestReaderSplitStorm(t *testing.T) {
	r := newRig(t, Config{BufferPages: 4096, ConcurrentReads: true})
	if !r.tree.ConcurrentReads() {
		t.Fatalf("ConcurrentReads not enabled on the tree")
	}
	for k := uint64(1); k <= 3000; k++ {
		if res := r.insert(k, fmt.Sprintf("v%d", k)); res.Err != nil {
			t.Fatalf("insert %d: %v", k, res.Err)
		}
		// Probe the frontier (the page that just split, when it did) and a
		// key deep in the settled region.
		for _, probe := range []uint64{k, k/2 + 1} {
			v, found, served := r.tree.ConcurrentGet(probe)
			if !served {
				t.Fatalf("acked key %d not served at frontier %d (buffer-resident tree must publish fully)", probe, k)
			}
			if !found || string(v) != fmt.Sprintf("v%d", probe) {
				t.Fatalf("key %d = %q/%v at frontier %d, want v%d/true", probe, v, found, k, probe)
			}
		}
		// An absent key one past the frontier needs an absence proof.
		if _, found, served := r.tree.ConcurrentGet(k + 1); served && found {
			t.Fatalf("unwritten key %d reported found at frontier %d", k+1, k)
		}
	}
	if h := r.tree.Height(); h < 3 {
		t.Fatalf("storm never grew the tree (height %d); splits untested", h)
	}
	pairs, served := r.tree.ConcurrentScan(1, 3000, 0)
	if !served {
		t.Fatalf("post-storm scan fell back")
	}
	if len(pairs) != 3000 {
		t.Fatalf("post-storm scan saw %d keys, want 3000", len(pairs))
	}
	for i, kv := range pairs {
		if kv.Key != uint64(i+1) {
			t.Fatalf("scan[%d] = key %d, want %d", i, kv.Key, i+1)
		}
	}
	st := r.tree.ReaderSnapshot()
	if st.Served == 0 || st.ScanServed == 0 {
		t.Fatalf("reader counters did not move: %+v", st)
	}
}

// TestReaderPendingWriteFallsBack pins the read-your-writes fence at the
// Tree level: while a write on key k is admitted but not complete, an
// optimistic read of k must refuse to serve.
func TestReaderPendingWriteFallsBack(t *testing.T) {
	r := newRig(t, Config{BufferPages: 1024, ConcurrentReads: true})
	r.insert(1, "old")
	op := NewInsert(1, []byte("new"), nil)
	done := false
	op.Done = func(*Op) { done = true }
	r.eng.After(0, func() { r.tree.Admit(op) })
	// Step just far enough for admission to land but (in all likelihood)
	// not complete; the fence must hold at every intermediate state.
	sawPending := false
	for !done && r.eng.Step() {
		if r.tree.ReadPending(1) {
			sawPending = true
			if _, _, served := r.tree.ConcurrentGet(1); served {
				t.Fatalf("optimistic read served while its key had a pending write")
			}
		}
	}
	if !sawPending {
		t.Fatalf("pending fence never observed; test drove past the window")
	}
	if r.tree.ReadPending(1) {
		t.Fatalf("pending fence stuck after completion")
	}
	if v, found, served := r.tree.ConcurrentGet(1); !served || !found || string(v) != "new" {
		t.Fatalf("post-write read = %q/%v served=%v, want new/true", v, found, served)
	}
}
