package core

// Speculative child prefetch (Config.SpeculativePrefetch): the drain-time
// half of the pipelined polled loop of DESIGN.md §17.
//
// The polled worker normally discovers each operation's next page one
// level at a time: descend, miss, submit a read, park, resume. A deep
// drain batch therefore trickles its leaf reads onto the device one
// main-loop pass apart, and the NVMe queue idles while the worker walks
// inner pages it already has in memory. This file inverts that: at drain
// time the worker walks each queued point operation's *predicted*
// root-to-leaf path through buffer-resident pages — pure CPU over sealed
// images, no latches, no device traffic — and issues the first missing
// page's read immediately, so the read is in flight (or done) by the
// time the operation's turn comes. When a speculative read lands and
// makes an inner page resident, its search steers the next level and the
// prediction chains one page deeper — the "inner-page search completed →
// issue the likely child reads" trigger.
//
// Speculation is advisory and strictly bounded:
//
//   - a budget (Config.SpecBudget) caps speculative reads in flight, the
//     pass is additionally capped by submission-queue headroom (half the
//     ring is reserved for demand traffic), and it is skipped entirely
//     while the probe policy predicts completions are ready to reap —
//     reaping first both frees budget and may make predicted pages
//     resident for free. The pass is CPU-bounded too: it probes at most
//     one predicted path per budget unit, so a warm-buffer drain of
//     hundreds of operations never walks them all just to find every
//     page resident;
//   - a completed speculative image is installed only after validation:
//     an intervening write of the same page (any write-submission site
//     calls specInvalidate, which marks the in-flight read stale and
//     wakes its waiters immediately so they re-read the fresh image from
//     the buffers instead of waiting out a doomed read), residency
//     established via another path, a device error, or a checksum
//     failure drops the image (SpecCancelled) — so a speculative read
//     can never publish a stale page over a newer write, no matter how
//     device completions reorder;
//   - speculative reads carry no retry budget. An operation that parked
//     on one (SpecHits) is simply woken on cancellation and falls back
//     to its own demand read with its own full retry budget, so the
//     fault-handling paths are unchanged.
//
// Everything here runs on the working thread; the single-writer
// invariant is untouched. With the option off (the default) none of
// these paths execute and simulated schedules are byte-identical.

import (
	"github.com/patree/patree/internal/metrics"
	"github.com/patree/patree/internal/nvme"
	"github.com/patree/patree/internal/sim"
	"github.com/patree/patree/internal/storage"
)

// specWaiter is an operation parked on an in-flight speculative read,
// with the instant it parked (its I/O wait accrues from there).
type specWaiter struct {
	op    *Op
	since sim.Time
}

// specRead tracks one speculative page read between submission and
// completion. keys are the drained keys predicted to descend through
// this page — the chain-prediction seeds once it lands; stale flips
// when a write of the page is submitted while the read is in flight
// (specInvalidate), which vetoes the install.
type specRead struct {
	id      storage.PageID
	stale   bool
	keys    []uint64
	waiters []specWaiter
}

// speculate runs one prefetch pass over the point keys drained in this
// batch (t.specKeys). Called from drainInbox when speculation is on.
// Each probe costs virtual CPU even when it issues nothing, so the pass
// probes at most one distinct key per budget unit — the prediction
// overhead stays a fixed, small fraction of the pass instead of growing
// with the drain batch.
func (t *Tree) speculate(now sim.Time) {
	keys := t.specKeys
	t.specKeys = keys[:0]
	if t.failed || len(keys) == 0 {
		return
	}
	budget := t.specBudgetNow(now)
	probes := budget
	if t.specSeen == nil {
		t.specSeen = make(map[uint64]struct{})
	}
	clear(t.specSeen)
	for _, key := range keys {
		if budget <= 0 || probes <= 0 {
			return
		}
		// Skewed workloads drain the same hot key many times per batch;
		// one probe covers them all (they coalesce on the same read).
		if _, dup := t.specSeen[key]; dup {
			continue
		}
		t.specSeen[key] = struct{}{}
		probes--
		if t.specPredict(key) {
			budget--
		}
	}
}

// specBudgetNow computes how many speculative reads this pass may issue:
// the configured cap minus those already in flight, further capped by
// submission-queue headroom (speculation never takes the half of the
// ring reserved for demand traffic), and zero while the probe policy
// predicts completions are ready to reap. The policy consult pays the
// same per-evaluation overhead the main loop's probe gate pays.
func (t *Tree) specBudgetNow(now sim.Time) int {
	b := t.cfg.SpecBudget - len(t.specInflight)
	if head := t.cfg.QueueDepth/2 - t.qp.Outstanding(); head < b {
		b = head
	}
	if b <= 0 {
		return 0
	}
	if t.ioBlocked > 0 {
		t.charge(metrics.CatSched, t.policy.Overhead())
		if t.policy.ShouldProbe(now, t.ioBlocked) {
			return 0
		}
	}
	return b
}

// specPredict walks key's predicted descent path through buffer-resident
// pages and issues a read for the first missing one. Returns true when a
// new read was issued. The walk reads sealed page images without
// latches: it is a prediction, not a traversal — the operation itself
// re-descends under the full latch protocol when its turn comes, so a
// prediction gone stale costs at most one wasted read. Each level
// charges a quarter of a full node visit: the probe is a bare binary
// search over the sealed slot array, with none of the latch, validation
// or materialization work the real descent pays (and re-pays).
func (t *Tree) specPredict(key uint64) bool {
	cur := t.rootID
	for depth := 0; depth < t.height; depth++ {
		data, ok := t.specResident(cur)
		if !ok {
			return t.specIssue(cur, key)
		}
		t.charge(metrics.CatRealWork, t.cfg.Costs.NodeVisit/4)
		step, err := storage.SearchPage(data, key)
		if err != nil || step.Leaf {
			// Resident down to the leaf (or an undecodable image the real
			// descent will deal with): nothing to prefetch.
			return false
		}
		cur = step.Child
	}
	return false
}

// specResident looks a page up in the buffers with no fill side effects
// (unlike lookupPage, which refills from the in-flight write-back map).
func (t *Tree) specResident(id storage.PageID) ([]byte, bool) {
	if t.rw != nil {
		if data, ok := t.rw.Get(id); ok {
			return data, true
		}
		data, ok := t.inflight[id]
		return data, ok
	}
	return t.ro.Get(id)
}

// specIssue submits a speculative read of id, predicted for the given
// point keys (none for a scan-ahead leaf, whose install has nothing to
// chain). Returns true when a new command was issued (budget consumed).
// A read already in flight for the page just adopts the keys for chain
// prediction; a full submission queue drops the guess — demand traffic
// has priority, and there is no stalled-list entry to lose.
func (t *Tree) specIssue(id storage.PageID, keys ...uint64) bool {
	if sr, ok := t.specInflight[id]; ok {
		if !sr.stale {
			sr.keys = append(sr.keys, keys...)
		}
		return false
	}
	if t.specInflight == nil {
		t.specInflight = make(map[storage.PageID]*specRead)
	}
	sr := &specRead{id: id, keys: keys}
	buf := make([]byte, storage.PageSize)
	submitted := t.now()
	cmd := &nvme.Command{Op: nvme.OpRead, LBA: uint64(id), Blocks: 1, Buf: buf}
	cmd.Callback = func(c nvme.Completion) {
		t.ioBlocked--
		now := t.now()
		t.policy.OnDetected(nvme.OpRead, submitted, now)
		if t.tr != nil {
			t.tr.Emit(tcIORead, classNone, 0, uint64(id), int64(submitted), int64(now.Sub(submitted)))
		}
		delete(t.specInflight, id)
		t.specComplete(sr, buf, c.Err, now)
	}
	t.charge(metrics.CatNVMe, t.cfg.Costs.IOSubmit)
	if err := t.qp.Submit(cmd); err != nil {
		return false
	}
	t.policy.OnSubmit(nvme.OpRead, submitted)
	t.ioBlocked++
	t.stats.ReadsIssued++
	t.stats.SpecIssued++
	t.specInflight[id] = sr
	return true
}

// specComplete validates and installs one landed speculative image, wakes
// the operations parked on it, and chains the prediction one page deeper
// for the keys that rode on it.
func (t *Tree) specComplete(sr *specRead, buf []byte, err error, now sim.Time) {
	_, resident := t.specResident(sr.id)
	if err != nil || resident || sr.stale || !storage.VerifyPage(buf) {
		if err != nil {
			t.stats.IOErrors++
		}
		// Mispredict: drop the image. Waiters wake and issue their own
		// demand reads (fresh image, full retry budget).
		t.stats.SpecCancelled++
		t.promoteSpecWaiters(sr, now)
		return
	}
	t.fillOnRead(sr.id, buf)
	if len(sr.waiters) == 0 {
		t.stats.SpecWasted++
	}
	t.promoteSpecWaiters(sr, now)
	if t.failed {
		return
	}
	budget := t.specBudgetNow(now)
	for _, key := range sr.keys {
		if budget <= 0 {
			return
		}
		if t.specPredict(key) {
			budget--
		}
	}
}

// specScanAhead prefetches right siblings of the leaf a range scan is
// about to enter. A scan crossing a leaf boundary otherwise discovers
// each sibling only from the previous leaf's Next link — one read per
// 75µs-class device round trip, strictly serial. The parent inner node
// in hand lists those same siblings in order, so the expected leaves
// are issued together and the scan's chain of serial reads collapses
// into one parallel batch. Bounded like all speculation: at most
// specScanAheadDepth leaves, never beyond the scan's end key, within
// the in-flight budget and the demand-reserved queue headroom.
func (t *Tree) specScanAhead(o *Op, node *storage.Node, idx int) {
	if t.failed || node.Level != 1 {
		return
	}
	issued := 0
	for j := idx + 1; j < len(node.Children) && issued < specScanAheadDepth; j++ {
		if node.Keys[j-1] > o.endKey {
			return
		}
		if len(t.specInflight) >= t.cfg.SpecBudget ||
			t.qp.Outstanding() >= t.cfg.QueueDepth/2 {
			return
		}
		id := node.Children[j]
		if _, ok := t.specResident(id); ok {
			continue
		}
		if t.specIssue(id) {
			issued++
		}
	}
}

// specScanAheadDepth bounds how many sibling leaves one scan prefetches:
// at the default 64-pair scan length and ~20-byte entries a scan spans
// about four leaves. A longer scan falls back to serial Next-link reads
// past the prefetched window (and past this parent's last child).
const specScanAheadDepth = 4

// specInvalidate is called by every write-submission site (in-buffer
// updates, background write-backs, strong-mode op writes, checkpoint
// page writes) with the page being written. If a speculative read of
// that page is in flight its device image is now stale: mark it so the
// completion drops it, and wake its waiters immediately — the write
// just made the fresh image resident (buffer or in-flight table), so
// they re-read it at once instead of waiting out a doomed read. With no
// read in flight for the page (the common case, and always when
// speculation is off) this is a nil-map lookup and nothing more.
func (t *Tree) specInvalidate(id storage.PageID) {
	sr, ok := t.specInflight[id]
	if !ok || sr.stale {
		return
	}
	sr.stale = true
	sr.keys = nil
	t.promoteSpecWaiters(sr, t.now())
}

// promoteSpecWaiters wakes every operation parked on sr, crediting the
// park time as I/O wait (the read they coalesced onto was doing their
// I/O). Also called from enterFailed so no waiter is ever stranded on a
// read whose completion the failed state will ignore.
func (t *Tree) promoteSpecWaiters(sr *specRead, now sim.Time) {
	for _, w := range sr.waiters {
		w.op.ioWait += now.Sub(w.since)
		if t.tr != nil {
			t.tr.Emit(tcIORead, uint16(w.op.kind), w.op.seq, uint64(sr.id), int64(w.since), int64(now.Sub(w.since)))
		}
		t.pushReady(w.op, now)
	}
	sr.waiters = sr.waiters[:0]
}
