package core

import (
	"math/bits"
	"sync"
	"sync/atomic"
	"time"

	"github.com/patree/patree/internal/storage"
)

// This file is the worker→reader publication side of intra-shard read
// concurrency (DESIGN.md §15). The polled worker stays the sole mutator;
// what changes is that, with Config.ConcurrentReads set, it *publishes* an
// immutable image of every page it installs in the buffer into a pubTable
// that read-only goroutines may traverse without touching the worker, its
// latch table, or its buffers. Publication is seqlock-style per page:
//
//	frame.ver  odd  = image pointer mid-update or frame retired
//	frame.ver  even = img holds the page's current published image
//
// The worker bumps ver to odd, stores the new image pointer, then bumps
// back to even; a reader snapshots (ver, img) and trusts img only if ver
// was even and unchanged across the pointer load. Images themselves are
// immutable once stored — install snapshots the page bytes at publication
// time, decoupling them from the worker's live (and still mutating)
// buffer — so a reader holding an image can search it at leisure; the
// version dance only guards the *pointer* and orders image against B-link
// metadata, and re-checking a frame's version answers "is this image still
// current?" during path validation.
//
// The table mirrors buffer residency: pages are published when they enter
// a buffer (fill or write-back) and retired when they leave it, via the
// buffer's eviction hook. Retiring poisons the frame's version to odd
// *before* deleting it from the map, so a reader that obtained the frame
// earlier can never validate against a retired frame that a later
// re-publication would resurrect (the stale-version ABA the tests hunt).

// pubImage is one published page state: the sealed immutable image plus
// the B-link metadata readers need without decoding.
type pubImage struct {
	data []byte
	// right is the right-sibling link decoded from the image header,
	// cached so the escape check costs no parsing. NilPage when none.
	right storage.PageID
	// highKey, when hasHigh is set, is the exclusive upper bound of this
	// page's key range: every key >= highKey lives somewhere along the
	// right-link chain. Split publication knows the bound exactly (the
	// separator); images published by plain buffer fills do not, and a
	// reader landing on such a page can escape only by restarting.
	highKey uint64
	hasHigh bool
}

// pubFrame is one page's seqlock slot. Only the worker writes it.
type pubFrame struct {
	ver atomic.Uint64
	img atomic.Pointer[pubImage]
}

// loadImage snapshots the frame under the seqlock protocol. ok=false
// means the frame was mid-update (or retired) across every attempt and
// the caller should restart its descent.
func (f *pubFrame) loadImage() (img *pubImage, ver uint64, ok bool) {
	for i := 0; i < 4; i++ {
		v := f.ver.Load()
		if v&1 == 1 {
			continue
		}
		im := f.img.Load()
		if f.ver.Load() == v && im != nil {
			return im, v, true
		}
	}
	return nil, 0, false
}

// pendStripes shards the pending-key registry to keep producer-side
// contention negligible.
const pendStripes = 64

type pendStripe struct {
	mu sync.RWMutex
	m  map[uint64]uint32
	_  [24]byte // keep neighbouring stripes off one cache line
}

// pendingKeys counts, per exact key, the writes admitted but not yet
// complete. It is the read-your-writes fence: an optimistic read of a key
// with a pending write must fall back to the admission pipeline, where
// keyDeps orders it behind that write. Producers increment *before* the
// ring push (so the count can never lag the inbox) and the worker
// decrements at op teardown, after the op's pages were published.
type pendingKeys struct {
	stripes [pendStripes]pendStripe
}

func pendStripeOf(key uint64) uint64 {
	// splitmix64-style finalizer; same family as ShardOf but a different
	// rotation so stripe choice does not correlate with shard choice.
	key ^= key >> 33
	key *= 0xff51afd7ed558ccd
	return (key >> 33) % pendStripes
}

func (p *pendingKeys) inc(key uint64) {
	s := &p.stripes[pendStripeOf(key)]
	s.mu.Lock()
	if s.m == nil {
		s.m = make(map[uint64]uint32)
	}
	s.m[key]++
	s.mu.Unlock()
}

func (p *pendingKeys) dec(key uint64) {
	s := &p.stripes[pendStripeOf(key)]
	s.mu.Lock()
	if n := s.m[key]; n <= 1 {
		delete(s.m, key)
	} else {
		s.m[key] = n - 1
	}
	s.mu.Unlock()
}

func (p *pendingKeys) pending(key uint64) bool {
	s := &p.stripes[pendStripeOf(key)]
	s.mu.RLock()
	_, ok := s.m[key]
	s.mu.RUnlock()
	return ok
}

// readerLatBuckets is the log2-nanosecond histogram width: bucket i
// counts durations in [2^i, 2^(i+1)) ns, saturating at the top.
const readerLatBuckets = 40

// ReaderLatency is a mergeable log2 latency histogram maintained with
// atomics so concurrent readers record without coordination.
type ReaderLatency struct {
	Count   uint64
	Sum     time.Duration
	Buckets [readerLatBuckets]uint64
}

// Merge accumulates o into l.
func (l *ReaderLatency) Merge(o *ReaderLatency) {
	l.Count += o.Count
	l.Sum += o.Sum
	for i := range l.Buckets {
		l.Buckets[i] += o.Buckets[i]
	}
}

// Mean returns the average recorded duration.
func (l *ReaderLatency) Mean() time.Duration {
	if l.Count == 0 {
		return 0
	}
	return l.Sum / time.Duration(l.Count)
}

// Percentile returns an upper bound on the q-th percentile (0 < q <= 100)
// at log2 resolution.
func (l *ReaderLatency) Percentile(q float64) time.Duration {
	if l.Count == 0 {
		return 0
	}
	rank := uint64(q / 100 * float64(l.Count))
	if rank == 0 {
		rank = 1
	}
	var seen uint64
	for i, c := range l.Buckets {
		seen += c
		if seen >= rank {
			return time.Duration(uint64(1) << (uint(i) + 1))
		}
	}
	return l.Sum // saturated top bucket; Sum is a safe upper bound
}

// ReaderStats is the observability snapshot of the optimistic read path.
// Counters are cumulative since Open; Merge sums them across shards.
type ReaderStats struct {
	// Attempts counts optimistic point reads started; Served counts those
	// answered without the pipeline. Attempts - Served fell back.
	Attempts uint64
	Served   uint64
	// Restarts counts full descent restarts (version changed underfoot);
	// Escapes counts right-link hops taken after a concurrent split.
	Restarts uint64
	Escapes  uint64
	// Fallback reasons: a pending write on the key (read-your-writes), a
	// page absent from the published table, or restarts exhausted.
	FallbackPending  uint64
	FallbackMiss     uint64
	FallbackRestarts uint64
	// Scan counterparts.
	ScanAttempts uint64
	ScanServed   uint64
	// Lat is the latency distribution of served optimistic point reads.
	Lat ReaderLatency
}

// Merge accumulates o into s (for cross-shard snapshots).
func (s *ReaderStats) Merge(o *ReaderStats) {
	s.Attempts += o.Attempts
	s.Served += o.Served
	s.Restarts += o.Restarts
	s.Escapes += o.Escapes
	s.FallbackPending += o.FallbackPending
	s.FallbackMiss += o.FallbackMiss
	s.FallbackRestarts += o.FallbackRestarts
	s.ScanAttempts += o.ScanAttempts
	s.ScanServed += o.ScanServed
	s.Lat.Merge(&o.Lat)
}

// pubTable is one shard's published-page table.
type pubTable struct {
	// rootReg packs the published root register: rootID<<8 | height.
	// 0 means "nothing published — fall back" (PageID 0 is the meta page,
	// never a root), which is also how a failed tree withdraws the fast
	// path. One word so readers load root and height tear-free.
	rootReg atomic.Uint64

	// frames maps PageID -> *pubFrame. sync.Map fits the access pattern:
	// read-mostly with a stable working set, so reader Loads stay on the
	// lock-free read map.
	frames sync.Map

	pend pendingKeys

	// Reader-side counters (atomic; written by reader goroutines, read by
	// snapshots anywhere).
	attempts         atomic.Uint64
	served           atomic.Uint64
	restarts         atomic.Uint64
	escapes          atomic.Uint64
	fallbackPending  atomic.Uint64
	fallbackMiss     atomic.Uint64
	fallbackRestarts atomic.Uint64
	scanAttempts     atomic.Uint64
	scanServed       atomic.Uint64
	latCount         atomic.Uint64
	latSum           atomic.Int64
	latBuckets       [readerLatBuckets]atomic.Uint64
}

func newPubTable() *pubTable { return &pubTable{} }

func (p *pubTable) recordLatency(d time.Duration) {
	if d < 0 {
		d = 0
	}
	p.latCount.Add(1)
	p.latSum.Add(int64(d))
	b := bits.Len64(uint64(d)) // 0 for d=0; bucket of [2^i, 2^(i+1)) is i+1-1
	if b > 0 {
		b--
	}
	if b >= readerLatBuckets {
		b = readerLatBuckets - 1
	}
	p.latBuckets[b].Add(1)
}

// snapshot gathers the reader counters. Safe from any goroutine.
func (p *pubTable) snapshot() ReaderStats {
	var s ReaderStats
	s.Attempts = p.attempts.Load()
	s.Served = p.served.Load()
	s.Restarts = p.restarts.Load()
	s.Escapes = p.escapes.Load()
	s.FallbackPending = p.fallbackPending.Load()
	s.FallbackMiss = p.fallbackMiss.Load()
	s.FallbackRestarts = p.fallbackRestarts.Load()
	s.ScanAttempts = p.scanAttempts.Load()
	s.ScanServed = p.scanServed.Load()
	s.Lat.Count = p.latCount.Load()
	s.Lat.Sum = time.Duration(p.latSum.Load())
	for i := range s.Lat.Buckets {
		s.Lat.Buckets[i] = p.latBuckets[i].Load()
	}
	return s
}

// ─── worker side ────────────────────────────────────────────────────────

// publishRoot publishes the root register. Worker only.
func (p *pubTable) publishRoot(root storage.PageID, height int) {
	packed := uint64(root)<<8 | uint64(height)&0xff
	if p.rootReg.Load() != packed {
		p.rootReg.Store(packed)
	}
}

// withdrawRoot unpublishes the root register; every subsequent optimistic
// read misses and falls back to the pipeline (which will surface the
// tree's terminal error). Used when the tree enters the failed state.
func (p *pubTable) withdrawRoot() { p.rootReg.Store(0) }

// loadRootReg returns the published root and height.
func (p *pubTable) loadRootReg() (storage.PageID, int, bool) {
	packed := p.rootReg.Load()
	if packed == 0 {
		return storage.NilPage, 0, false
	}
	return storage.PageID(packed >> 8), int(packed & 0xff), true
}

func (p *pubTable) frame(id storage.PageID) *pubFrame {
	if f, ok := p.frames.Load(id); ok {
		return f.(*pubFrame)
	}
	return nil
}

// install makes img the published image of id. Worker only.
//
// The image bytes are snapshotted here: callers hand in the worker's live
// buffer page, which the worker keeps mutating after publication (in-place
// leaf updates, and even read-only SearchPage scratches the checksum field
// in place). A published image must be immutable for its whole lifetime —
// the seqlock only guards the *pointer*, a reader validated against an
// old version may still be reading the old image's bytes — so aliasing
// the buffer would be a data race. One page copy per publication is the
// worker-side price of latch-free readers.
func (p *pubTable) install(id storage.PageID, img *pubImage) {
	img.data = append([]byte(nil), img.data...)
	if f := p.frame(id); f != nil {
		f.ver.Add(1) // odd: update in progress
		f.img.Store(img)
		f.ver.Add(1) // even: published
		return
	}
	f := &pubFrame{}
	f.img.Store(img)
	f.ver.Store(2)
	p.frames.Store(id, f)
}

// publishFill publishes a page image installed by a buffer fill. The
// key-range bound is unknown at fill time, so an existing frame's bound
// carries over (the range of a page only changes at a split, which goes
// through publishSplitMeta) and a fresh frame starts unbounded.
func (p *pubTable) publishFill(id storage.PageID, data []byte) {
	img := &pubImage{data: data, right: storage.PageNext(data)}
	if f := p.frame(id); f != nil {
		if old := f.img.Load(); old != nil {
			img.highKey, img.hasHigh = old.highKey, old.hasHigh
		}
	}
	p.install(id, img)
}

// publishBounded publishes a page image with an explicit key-range bound
// (from split metadata).
func (p *pubTable) publishBounded(id storage.PageID, data []byte, highKey uint64, hasHigh bool) {
	p.install(id, &pubImage{
		data:    data,
		right:   storage.PageNext(data),
		highKey: highKey,
		hasHigh: hasHigh,
	})
}

// retire removes id from the table when it leaves the buffer. The version
// is poisoned to odd *before* the map delete: a reader that loaded this
// frame can never revalidate it, even if the page is later re-published
// under a fresh frame.
func (p *pubTable) retire(id storage.PageID) {
	if f := p.frame(id); f != nil {
		f.ver.Add(1)
		p.frames.Delete(id)
	}
}

// pubSplit records one split performed by an op: left kept keys < sep,
// right (fresh page) took keys >= sep. Replayed at publication time to
// derive each page's final key-range bound.
type pubSplit struct {
	left, right storage.PageID
	sep         uint64
}

// boundsOf replays an op's split records into the final (highKey, hasHigh)
// per touched page: at each split the right page inherits the left page's
// previous bound and the left page's bound becomes the separator. Bounds
// seed from the table's current frames. The result is a small slice, not
// a map — ops rarely split more than a handful of pages.
type pageBound struct {
	id      storage.PageID
	highKey uint64
	hasHigh bool
	known   bool // false: not touched by a split; keep whatever the frame has
}

// publishGroup publishes every page image a completing op installed,
// with split bounds replayed. Ordering is what makes a mid-publication
// race harmless: fresh pages (no existing frame — split right siblings
// and new roots) are installed first, so by the time a reader can see a
// shrunken left page or a parent with a new separator, the right-link
// target it would escape to is already published; then existing pages in
// image order (children-first in strong mode); the root register last.
// Runs on the worker at finishOp, before the op's ack.
func (t *Tree) publishGroup(o *Op) {
	p := t.pub
	if p == nil || t.failed {
		return
	}
	imgs := o.writes
	if len(o.pubImgs) > 0 {
		imgs = o.pubImgs
	}
	if len(imgs) == 0 {
		return
	}
	bounds := p.boundsOf(o.pubSplits)
	boundOf := func(id storage.PageID) (uint64, bool, bool) {
		for i := range bounds {
			if bounds[i].id == id {
				return bounds[i].highKey, bounds[i].hasHigh, bounds[i].known
			}
		}
		return 0, false, false
	}
	for pass := 0; pass < 2; pass++ {
		for _, w := range imgs {
			if w.id == 0 {
				continue // meta page: readers use the root register instead
			}
			fresh := p.frame(w.id) == nil
			if (pass == 0) != fresh {
				continue
			}
			if hk, has, known := boundOf(w.id); known {
				p.publishBounded(w.id, w.data, hk, has)
			} else {
				p.publishFill(w.id, w.data)
			}
		}
	}
	p.publishRoot(t.rootID, t.height)
}

func (p *pubTable) boundsOf(splits []pubSplit) []pageBound {
	var bounds []pageBound
	find := func(id storage.PageID) *pageBound {
		for i := range bounds {
			if bounds[i].id == id {
				return &bounds[i]
			}
		}
		bounds = append(bounds, pageBound{id: id})
		b := &bounds[len(bounds)-1]
		if f := p.frame(id); f != nil {
			if img := f.img.Load(); img != nil {
				b.highKey, b.hasHigh, b.known = img.highKey, img.hasHigh, true
			}
		}
		return b
	}
	for _, s := range splits {
		l := find(s.left)
		lHigh, lHas := l.highKey, l.hasHigh
		r := find(s.right)
		r.highKey, r.hasHigh, r.known = lHigh, lHas, true
		l = find(s.left) // re-find: the append above may have moved the slice
		l.highKey, l.hasHigh, l.known = s.sep, true, true
	}
	return bounds
}
