package core

import (
	"runtime"
	"sync"
	"testing"
)

func TestRingCapacityRounding(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{0, 8}, {1, 8}, {8, 8}, {9, 16}, {100, 128}, {4096, 4096},
	} {
		if got := newOpRing(tc.in).Cap(); got != tc.want {
			t.Errorf("newOpRing(%d).Cap() = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestRingFIFO(t *testing.T) {
	r := newOpRing(8)
	ops := make([]*Op, 20)
	for i := range ops {
		ops[i] = NewNop(nil)
	}
	next := 0
	for len(ops) > 0 {
		pushed := 0
		for _, o := range ops {
			if !r.TryPush(o) {
				break
			}
			pushed++
		}
		if pushed == 0 {
			t.Fatal("ring refused a push while drained")
		}
		ops = ops[pushed:]
		for i := 0; i < pushed; i++ {
			if _, ok := r.Pop(); !ok {
				t.Fatalf("pop %d returned nothing", i)
			}
			next++
		}
	}
	if _, ok := r.Pop(); ok {
		t.Fatal("pop on empty ring returned an op")
	}
	if next != 20 {
		t.Fatalf("popped %d ops, want 20", next)
	}
}

func TestRingFullAndLen(t *testing.T) {
	r := newOpRing(8)
	for i := 0; i < 8; i++ {
		if !r.TryPush(NewNop(nil)) {
			t.Fatalf("push %d failed below capacity", i)
		}
	}
	if r.TryPush(NewNop(nil)) {
		t.Fatal("push succeeded on a full ring")
	}
	if r.Len() != 8 {
		t.Fatalf("Len() = %d, want 8", r.Len())
	}
	if r.Empty() {
		t.Fatal("full ring reported Empty")
	}
	r.Pop()
	if !r.TryPush(NewNop(nil)) {
		t.Fatal("push failed after a pop freed a slot")
	}
}

func TestRingTryPushNAtomic(t *testing.T) {
	r := newOpRing(8)
	batch := make([]*Op, 5)
	for i := range batch {
		batch[i] = NewNop(nil)
	}
	if !r.TryPushN(batch) {
		t.Fatal("first batch refused on empty ring")
	}
	// 3 free slots: a 5-op batch must be refused atomically.
	if r.TryPushN(batch) {
		t.Fatal("batch larger than free space accepted")
	}
	if r.Len() != 5 {
		t.Fatalf("failed TryPushN changed Len to %d", r.Len())
	}
	small := batch[:3]
	if !r.TryPushN(small) {
		t.Fatal("batch exactly filling the ring refused")
	}
	if r.Len() != 8 {
		t.Fatalf("Len() = %d, want 8", r.Len())
	}
}

// TestRingConcurrentProducers hammers the MPSC contract: many producers,
// one consumer, every op delivered exactly once. Run with -race.
func TestRingConcurrentProducers(t *testing.T) {
	const producers = 8
	const perProducer = 500
	r := newOpRing(64)
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				o := NewNop(nil)
				o.Tag = uint64(p)<<32 | uint64(i)
				for !r.TryPush(o) {
					runtime.Gosched() // consumer is draining concurrently
				}
			}
		}(p)
	}
	seen := make(map[uint64]bool, producers*perProducer)
	lastPer := make([]int64, producers)
	for i := range lastPer {
		lastPer[i] = -1
	}
	for len(seen) < producers*perProducer {
		o, ok := r.Pop()
		if !ok {
			runtime.Gosched()
			continue
		}
		if seen[o.Tag] {
			t.Fatalf("op %x delivered twice", o.Tag)
		}
		seen[o.Tag] = true
		// Per-producer FIFO: a producer's ops arrive in push order.
		p, i := o.Tag>>32, int64(o.Tag&0xffffffff)
		if i <= lastPer[p] {
			t.Fatalf("producer %d: op %d after op %d", p, i, lastPer[p])
		}
		lastPer[p] = i
	}
	wg.Wait()
	if !r.Empty() {
		t.Fatal("ring not empty after all ops consumed")
	}
}
