package core

import (
	"testing"
	"time"
)

func TestGovernorUnthrottledUntilHot(t *testing.T) {
	g := NewGovernor(4, 64)
	depth := []int{64, 64, 64, 64}
	// Uniform waits — far above MinWait but no shard above HotFactor× its
	// peers — must never impose a window.
	for round := 0; round < 100; round++ {
		g.Adapt(depth, []time.Duration{time.Millisecond, time.Millisecond, time.Millisecond, time.Millisecond})
	}
	for i := 0; i < 4; i++ {
		if g.Window(i) != 0 {
			t.Fatalf("uniform waits imposed a window on shard %d: %d", i, g.Window(i))
		}
		if g.Throttled(i, 1<<20) {
			t.Fatalf("unthrottled shard %d reports throttled", i)
		}
	}
	// Loud but *absolutely* quiet: a 3x relative spread below MinWait is
	// idle noise, not heat.
	g.Adapt(depth, []time.Duration{90 * time.Microsecond, time.Microsecond, time.Microsecond, time.Microsecond})
	if g.Window(0) != 0 {
		t.Fatalf("sub-floor wait imposed a window: %d", g.Window(0))
	}
}

func TestGovernorImposeHalveRecoverLift(t *testing.T) {
	g := NewGovernor(2, 64) // min=16, max=128, step=4
	hot := []time.Duration{10 * time.Millisecond, 10 * time.Microsecond}
	cool := []time.Duration{10 * time.Microsecond, 10 * time.Microsecond}

	// First detection imposes at depth/2.
	g.Adapt([]int{64, 64}, hot)
	if got := g.Window(0); got != 32 {
		t.Fatalf("first detection window = %d, want 32", got)
	}
	if g.Window(1) != 0 {
		t.Fatalf("cold shard got a window: %d", g.Window(1))
	}
	if !g.Throttled(0, 32) || g.Throttled(0, 31) {
		t.Fatalf("throttle boundary wrong: at 32 %v, at 31 %v", g.Throttled(0, 32), g.Throttled(0, 31))
	}

	// Still hot: multiplicative decrease, floored at depth/4.
	g.Adapt([]int{32, 64}, hot)
	if got := g.Window(0); got != 16 {
		t.Fatalf("second detection window = %d, want 16", got)
	}
	g.Adapt([]int{16, 64}, hot)
	if got := g.Window(0); got != 16 {
		t.Fatalf("window fell through the floor: %d, want 16", got)
	}

	// Cooled: additive recovery by step per Adapt.
	g.Adapt([]int{16, 64}, cool)
	if got := g.Window(0); got != 20 {
		t.Fatalf("recovery window = %d, want 20", got)
	}
	// Keep recovering; the window grows past the nominal depth (the
	// deeper physical ring's headroom) and is lifted at 2x depth.
	rounds := 0
	for g.Window(0) != 0 {
		g.Adapt([]int{16, 64}, cool)
		if rounds++; rounds > 1000 {
			t.Fatal("window never lifted")
		}
	}
	// (128-20)/4 = 27 recovery rounds to reach the ceiling.
	if rounds != 27 {
		t.Fatalf("lift took %d rounds, want 27", rounds)
	}
	if g.Throttled(0, 1<<20) {
		t.Fatal("lifted shard still throttled")
	}
}

func TestGovernorSingleShardNeverThrottles(t *testing.T) {
	g := NewGovernor(1, 64)
	for i := 0; i < 10; i++ {
		g.Adapt([]int{1 << 20}, []time.Duration{time.Hour})
	}
	if g.Window(0) != 0 || g.Throttled(0, 1<<20) {
		t.Fatalf("one shard has no peers to run hot against: window=%d", g.Window(0))
	}
}

func TestGovernorDeterminism(t *testing.T) {
	run := func() []int {
		g := NewGovernor(3, 128)
		waits := [][]time.Duration{
			{5 * time.Millisecond, 20 * time.Microsecond, 30 * time.Microsecond},
			{4 * time.Millisecond, 25 * time.Microsecond, 20 * time.Microsecond},
			{50 * time.Microsecond, 30 * time.Microsecond, 25 * time.Microsecond},
			{40 * time.Microsecond, 6 * time.Millisecond, 20 * time.Microsecond},
			{30 * time.Microsecond, 20 * time.Microsecond, 25 * time.Microsecond},
		}
		depths := []int{128, 96, 64}
		for round := 0; round < 64; round++ {
			g.Adapt(depths, waits[round%len(waits)])
		}
		return []int{g.Window(0), g.Window(1), g.Window(2)}
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same Adapt sequence produced different windows: %v vs %v", a, b)
		}
	}
}

func TestGovernorTinyDepthFloor(t *testing.T) {
	// Degenerate depths clamp sanely: depth floors at 4, so min=1, step=1.
	g := NewGovernor(2, 1)
	g.Adapt([]int{1, 1}, []time.Duration{time.Second, time.Microsecond})
	if got := g.Window(0); got != 1 {
		t.Fatalf("tiny-depth window = %d, want 1 (min clamp)", got)
	}
	if !g.Throttled(0, 1) {
		t.Fatal("window of 1 must throttle at depth 1")
	}
}
