package core

import "time"

// Governor is the per-shard admission-window controller behind hot-shard
// adaptation: skewed traffic piles operations onto one shard's worker,
// and every op it admits beyond what the worker can drain just sits in
// the ready set inflating queue-wait. The governor watches each shard's
// queue-wait EWMA (Tree.QueueWaitEWMA) against the other shards' and
// imposes a soft admission window — a cap on that shard's engine depth
// enforced by the caller (DB.admit, or the harness closed-loop driver) —
// on any shard whose wait runs hot. Waiting moves out of the engine to
// the admission side, bounding the hot shard's in-engine queue-wait by a
// factor of the cold shards' while heavy writers keep the deeper
// physical ring (the ring is allocated at twice the configured depth
// when weighting is on, so a throttled shard's window can also grow past
// the nominal depth when its queue-wait proves the worker keeps up).
//
// The control law is AIMD, evaluated only at explicit Adapt calls so it
// is deterministic: a shard is hot when its wait exceeds HotFactor × the
// mean of the other shards' waits (and a small absolute floor, so idle
// noise never triggers); a hot shard's window halves (imposed at half
// its current depth on first detection), a cool shard's window grows
// additively and is lifted entirely once it reaches the maximum. A shard
// with no imposed window is unthrottled — under uniform traffic no shard
// ever runs hot relative to its peers, no window is ever imposed, and
// execution is indistinguishable from running without the governor (the
// byte-identical-schedule property the sim regression tests pin).
//
// Not safe for concurrent Adapt calls; Window is safe to read
// concurrently with enforcement but callers that Adapt from several
// goroutines must serialize externally (see DB).
type Governor struct {
	// HotFactor is the relative queue-wait multiple that marks a shard
	// hot (default 3).
	HotFactor float64
	// MinWait is the absolute queue-wait floor below which a shard is
	// never marked hot regardless of ratios (default 100µs).
	MinWait time.Duration

	min, max int   // window clamp range
	step     int   // additive-increase step
	win      []int // 0 = unthrottled
}

// unthrottled is the Window value of a shard with no imposed window.
const unthrottled = 0

// NewGovernor builds a governor for shards workers whose nominal
// admission depth is depth: imposed windows live in [depth/4, 2*depth]
// and a window that grows back to 2*depth is lifted.
func NewGovernor(shards, depth int) *Governor {
	if depth < 4 {
		depth = 4
	}
	step := depth / 16
	if step < 1 {
		step = 1
	}
	return &Governor{
		HotFactor: 3,
		MinWait:   100 * time.Microsecond,
		min:       depth / 4,
		max:       2 * depth,
		step:      step,
		win:       make([]int, shards),
	}
}

// Window returns shard i's current admission window: the engine depth
// beyond which the caller should hold admissions back. 0 means
// unthrottled.
func (g *Governor) Window(i int) int { return g.win[i] }

// Throttled reports whether shard i currently has an imposed window and
// its depth has reached it.
func (g *Governor) Throttled(i, depth int) bool {
	return g.win[i] != unthrottled && depth >= g.win[i]
}

// Adapt runs one AIMD evaluation over the shards' current engine depths
// and queue-wait EWMAs (both slices indexed by shard, length equal to
// the governor's shard count). Pure state-machine arithmetic — no
// clocks, no randomness — so identical call sequences produce identical
// windows.
func (g *Governor) Adapt(depth []int, wait []time.Duration) {
	n := len(g.win)
	if n < 2 {
		return // one shard has no peers to run hot against
	}
	var total time.Duration
	for _, w := range wait {
		total += w
	}
	for i := range g.win {
		others := (total - wait[i]) / time.Duration(n-1)
		hot := wait[i] > g.MinWait && float64(wait[i]) > float64(others)*g.HotFactor
		switch {
		case hot:
			w := g.win[i]
			if w == unthrottled {
				// First detection: impose the window at half the present
				// depth so the backlog starts draining immediately.
				w = depth[i] / 2
			} else {
				w /= 2
			}
			if w < g.min {
				w = g.min
			}
			g.win[i] = w
		case g.win[i] != unthrottled:
			// Cooled down: additive recovery, lifted at the ceiling.
			g.win[i] += g.step
			if g.win[i] >= g.max {
				g.win[i] = unthrottled
			}
		}
	}
}
