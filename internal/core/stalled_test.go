package core

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"github.com/patree/patree/internal/fault"
	"github.com/patree/patree/internal/nvme"
	"github.com/patree/patree/internal/sim"
	"github.com/patree/patree/internal/simos"
	"github.com/patree/patree/internal/storage"
)

// chokedQP wraps the tree's queue pair and rejects every rejectEvery-th
// Submit with nvme.ErrQueueFull, so the stalled list and
// resubmitStalled are exercised deterministically — a genuinely tiny
// ring would stall too, but the stall and its resubmission both happen
// inside one simulation step, leaving nothing for the test to observe.
type chokedQP struct {
	nvme.QueuePair
	rejectEvery int
	submits     int
	rejected    int
}

func (q *chokedQP) Submit(cmd *nvme.Command) error {
	q.submits++
	if q.rejectEvery > 0 && q.submits%q.rejectEvery == 0 {
		q.rejected++
		return nvme.ErrQueueFull
	}
	return q.QueuePair.Submit(cmd)
}

// stormRig is a rig variant whose device is wrapped with fault
// injection and whose queue pair rejects submissions periodically, so
// full-queue stalls (the stalled list) and injected timeouts (the
// retry paths) storm the same submission paths at once.
type stormRig struct {
	t    *testing.T
	eng  *sim.Engine
	fdev *fault.Device
	qp   *chokedQP
	tree *Tree
}

func newStormRig(t *testing.T, cfg Config) *stormRig {
	t.Helper()
	r := &stormRig{t: t}
	r.eng = sim.NewEngine()
	osched := simos.New(r.eng, simos.Config{})
	inner := nvme.NewSimDevice(r.eng, nvme.SimConfig{Seed: 11})
	meta, err := Format(inner)
	if err != nil {
		t.Fatal(err)
	}
	// Format runs on the raw device; faults are armed by the test only
	// after the loaded phase, so the storm hits a valid tree.
	r.fdev = fault.New(inner, fault.Config{Seed: 0x5707})
	th := osched.Spawn("patree", func(*simos.Thread) { r.tree.Run() })
	tree, err := New(r.fdev, cfg, SimEnv{T: th}, meta)
	if err != nil {
		t.Fatal(err)
	}
	// Interpose the rejecting wrapper before the worker runs; every 7th
	// submission bounces with ErrQueueFull.
	r.qp = &chokedQP{QueuePair: tree.qp, rejectEvery: 7}
	tree.qp = r.qp
	r.tree = tree
	t.Cleanup(func() {
		r.tree.Stop()
		r.eng.RunFor(time.Second)
	})
	return r
}

// drive admits ops together and steps the simulation until every op's
// Done fired.
func (r *stormRig) drive(ops []*Op) {
	r.t.Helper()
	remaining := len(ops)
	for _, op := range ops {
		op.Done = func(*Op) { remaining-- }
	}
	r.eng.After(0, func() {
		for _, op := range ops {
			r.tree.Admit(op)
		}
	})
	for remaining > 0 && r.eng.Step() {
	}
	if remaining > 0 {
		r.t.Fatalf("%d operations never completed", remaining)
	}
}

// TestResubmitStalledTimeoutStorm drives a concurrent mixed batch
// while every 7th Submit bounces with ErrQueueFull and ~30% of the
// commands that do get in complete with nvme.ErrTimeout. Every
// submission path that can stall (reads and strong-persistence
// write-backs) must re-queue via the stalled list and eventually
// succeed: no operation may be lost, every retry must be visible in
// the stats, and the storm must stay below the terminal failed state
// because the per-op budget is generous.
func TestResubmitStalledTimeoutStorm(t *testing.T) {
	r := newStormRig(t, Config{
		BufferPages:  0, // no buffering: every access is a device command
		MaxIORetries: 16,
		RetryBackoff: 20 * time.Microsecond,
	})

	// Loaded phase, timeouts off (rejections stay on): build the tree.
	const n = 256
	load := make([]*Op, 0, n)
	for i := uint64(1); i <= n; i++ {
		load = append(load, NewInsert(i, []byte(fmt.Sprintf("v%d", i)), nil))
	}
	r.drive(load)
	if r.qp.rejected == 0 {
		t.Fatalf("%d concurrent inserts through the choked queue never stalled a submission", n)
	}

	// Storm phase: timeouts on ~30% of commands, mixed reads and writes.
	r.fdev.SetProbs(fault.Probs{Timeout: 0.3})
	mixed := make([]*Op, 0, n)
	for i := uint64(1); i <= n; i++ {
		if i%4 == 0 {
			mixed = append(mixed, NewInsert(i, []byte(fmt.Sprintf("w%d", i)), nil))
		} else {
			mixed = append(mixed, NewSearch(i, nil))
		}
	}
	r.drive(mixed)

	for _, op := range mixed {
		if op.Res.Err != nil {
			t.Fatalf("op key %d failed under a transient storm: %v", op.key, op.Res.Err)
		}
		if op.kind == KindSearch && !op.Res.Found {
			t.Fatalf("search %d lost its key", op.key)
		}
	}
	if len(r.tree.stalled) != 0 {
		t.Fatalf("%d entries left on the stalled list after the storm drained", len(r.tree.stalled))
	}
	if got := r.fdev.Counts().Timeouts; got == 0 {
		t.Fatal("fault injection armed but no timeouts fired")
	}
	st := r.tree.stats
	if st.IOErrors == 0 || st.IORetries == 0 {
		t.Fatalf("timeout storm left no trace: errors=%d retries=%d", st.IOErrors, st.IORetries)
	}
	if st.IORetries > st.IOErrors {
		t.Fatalf("more retries (%d) than errors (%d)", st.IORetries, st.IOErrors)
	}
	if r.tree.failed {
		t.Fatal("tree entered the failed state despite a generous retry budget")
	}
}

// TestResubmitStalledRetryBudgetBound pins the other edge: when every
// command times out, each operation consumes at most MaxIORetries
// retries before the tree declares the device failed, and every
// admitted operation still completes (with ErrDeviceFailed) — drained,
// not lost.
func TestResubmitStalledRetryBudgetBound(t *testing.T) {
	const budget = 2
	r := newStormRig(t, Config{
		BufferPages:  0,
		MaxIORetries: budget,
		RetryBackoff: 20 * time.Microsecond,
	})

	const n = 64
	load := make([]*Op, 0, n)
	for i := uint64(1); i <= n; i++ {
		load = append(load, NewInsert(i, []byte("x"), nil))
	}
	r.drive(load)

	r.fdev.SetProbs(fault.Probs{Timeout: 1})
	reads := make([]*Op, 0, n)
	for i := uint64(1); i <= n; i++ {
		reads = append(reads, NewSearch(i, nil))
	}
	r.drive(reads) // drive fails the test if any op is lost

	var failed int
	for _, op := range reads {
		if op.Res.Err != nil {
			if !errors.Is(op.Res.Err, ErrDeviceFailed) {
				t.Fatalf("search %d: %v, want ErrDeviceFailed", op.key, op.Res.Err)
			}
			failed++
		}
	}
	if failed == 0 {
		t.Fatal("every command timed out but no operation failed")
	}
	st := r.tree.stats
	if !r.tree.failed {
		t.Fatal("exhausted budgets must put the tree in the failed state")
	}
	if st.IORetries == 0 {
		t.Fatal("no retries before giving up")
	}
	if max := uint64(n * budget); st.IORetries > max {
		t.Fatalf("retries %d exceed the %d-op x %d budget bound", st.IORetries, n, budget)
	}
	// The page a failing op was reading stays out of the buffers, so no
	// later read can be served from a half-retried image.
	if _, ok := r.tree.inflight[storage.PageID(0)]; ok {
		t.Fatal("meta page left in the in-flight write table")
	}
}
