package core

import (
	"bytes"
	"testing"

	"github.com/patree/patree/internal/metrics"
)

// obsWorkload drives a deterministic mixed workload through a rig: bulk
// inserts (forcing splits and write-backs), interleaved searches,
// deletes and a batch of concurrent ops (exercising queueing and latch
// contention).
func obsWorkload(r *rig) {
	for k := uint64(0); k < 400; k++ {
		r.insert(k*7, "value-padding-padding")
	}
	ops := make([]*Op, 0, 64)
	for k := uint64(0); k < 32; k++ {
		ops = append(ops, NewSearch(k*7, nil))
		ops = append(ops, NewInsert(k*7, []byte("overwritten-value"), nil))
	}
	r.doAll(ops)
	for k := uint64(0); k < 16; k++ {
		r.delete(k * 7)
	}
}

func TestStageMetricsRecorded(t *testing.T) {
	r := newRig(t, Config{Persistence: StrongPersistence, BufferPages: 64})
	obsWorkload(r)

	st := r.tree.StatsSnapshot()
	if st.Stages == nil {
		t.Fatal("Stats.Stages not allocated")
	}
	// Every completed op must land in the total, inbox and queue-wait
	// stages of its kind.
	for _, kind := range []Kind{KindSearch, KindInsert, KindDelete} {
		completed := st.Completed[kind]
		if completed == 0 {
			t.Fatalf("no completed %v ops", kind)
		}
		for _, stage := range []metrics.Stage{metrics.StageInbox, metrics.StageQueueWait, metrics.StageTotal, metrics.StageDeliver} {
			h := st.Stages.Histogram(stage, int(kind))
			if h == nil || h.Count() != completed {
				got := uint64(0)
				if h != nil {
					got = h.Count()
				}
				t.Errorf("%v/%v: recorded %d, want %d", stage, kind, got, completed)
			}
		}
	}
	// The workload misses the buffer (64 pages, 400 keys), so inserts
	// must have accumulated I/O wait, and the total must dominate it.
	io := st.Stages.Histogram(metrics.StageIOWait, int(KindInsert))
	if io == nil || io.Count() == 0 {
		t.Fatal("no io-wait recorded for inserts despite strong persistence")
	}
	tot := st.Stages.Histogram(metrics.StageTotal, int(KindInsert))
	if tot.Percentile(50) < io.Percentile(50) {
		// io-wait sums sequential waits of one op, total spans them all.
		t.Errorf("median total %v below median io-wait %v", tot.Percentile(50), io.Percentile(50))
	}
}

func TestStageMetricsSurviveReset(t *testing.T) {
	r := newRig(t, Config{Persistence: StrongPersistence, BufferPages: 64})
	r.insert(1, "x")
	r.tree.ResetStats()
	st := r.tree.StatsSnapshot()
	if st.Stages == nil {
		t.Fatal("ResetStats dropped the stage set")
	}
	if h := st.Stages.Histogram(metrics.StageTotal, int(KindInsert)); h != nil && h.Count() != 0 {
		t.Fatalf("stage histogram not cleared: %d", h.Count())
	}
	r.insert(2, "y")
	st = r.tree.StatsSnapshot()
	if h := st.Stages.Histogram(metrics.StageTotal, int(KindInsert)); h == nil || h.Count() != 1 {
		t.Fatal("stage recording broken after ResetStats")
	}
}

// TestTraceDeterminism runs the same workload on two same-seed rigs with
// tracing enabled and requires byte-identical Chrome JSON exports — the
// property that makes traces usable as regression artifacts, and a
// strong check that tracing is pure observation (any perturbation of the
// virtual-time schedule would shift timestamps).
func TestTraceDeterminism(t *testing.T) {
	run := func() []byte {
		tr := NewTracer(1 << 16)
		cfg := Config{Persistence: StrongPersistence, BufferPages: 64, Tracer: tr}
		r := newRig(t, cfg)
		obsWorkload(r)
		var buf bytes.Buffer
		if err := tr.WriteChromeJSON(&buf, tr.Events()); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("empty trace export")
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("same-seed runs diverged: %d vs %d bytes", len(a), len(b))
	}
}

// TestTraceObservationOnly verifies tracing changes no simulated
// outcome: stats with the tracer on equal stats with it off.
func TestTraceObservationOnly(t *testing.T) {
	run := func(tr bool) Stats {
		cfg := Config{Persistence: StrongPersistence, BufferPages: 64}
		if tr {
			cfg.Tracer = NewTracer(1 << 16)
		}
		r := newRig(t, cfg)
		obsWorkload(r)
		return r.tree.StatsSnapshot()
	}
	off, on := run(false), run(true)
	if off.Completed != on.Completed || off.Probes != on.Probes ||
		off.ReadsIssued != on.ReadsIssued || off.WritesIssued != on.WritesIssued ||
		off.Yields != on.Yields {
		t.Fatalf("tracer perturbed the schedule:\noff: %+v\non:  %+v", off, on)
	}
	if off.Latency.Mean() != on.Latency.Mean() || off.Latency.Max() != on.Latency.Max() {
		t.Fatalf("tracer perturbed latencies: off mean=%v max=%v, on mean=%v max=%v",
			off.Latency.Mean(), off.Latency.Max(), on.Latency.Mean(), on.Latency.Max())
	}
}

func TestTracerCapturesLifecycle(t *testing.T) {
	tr := NewTracer(1 << 16)
	r := newRig(t, Config{Persistence: StrongPersistence, BufferPages: 64, Tracer: tr})
	obsWorkload(r)
	if got := r.tree.Tracer(); got != tr {
		t.Fatal("Tracer() accessor mismatch")
	}
	counts := map[uint16]int{}
	for _, e := range tr.Events() {
		counts[e.Code]++
	}
	// tcDeliver is absent by design here: completion callbacks consume no
	// virtual time in the simulation, and zero-length slices are elided.
	for _, code := range []uint16{tcInbox, tcQueueWait, tcIORead, tcIOWrite, tcOp} {
		if counts[code] == 0 {
			t.Errorf("no %q events captured", traceCodeNames[code])
		}
	}
	// Every op slice must carry a non-zero seq and a valid kind class.
	for _, e := range tr.Events() {
		if e.Code == tcOp {
			if e.Seq == 0 {
				t.Fatal("op event without sequence number")
			}
			if int(e.Class) >= numKinds {
				t.Fatalf("op event with bad class %d", e.Class)
			}
		}
	}
}
