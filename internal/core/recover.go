package core

import (
	"fmt"
	"time"

	"github.com/patree/patree/internal/nvme"
	"github.com/patree/patree/internal/storage"
	"github.com/patree/patree/internal/wal"
)

// walGeometry carves a journal region out of the top of a device:
// one-eighth of the blocks, clamped to [256, 8192]. Devices too small to
// spare half their capacity get no region (and therefore no journal).
func walGeometry(numBlocks uint64) (start, blocks uint64) {
	blocks = numBlocks / 8
	if blocks > 8192 {
		blocks = 8192
	}
	if blocks < 256 {
		blocks = 256
	}
	if blocks >= numBlocks/2 {
		return 0, 0
	}
	return numBlocks - blocks, blocks
}

// RecoverReport describes what Recover found and did.
type RecoverReport struct {
	// Journaled reports whether a journal region was present and scanned.
	Journaled bool
	// Generation is the journal generation whose records were replayed
	// (0 when the region held nothing live).
	Generation uint32
	// Records is the number of valid journal records scanned.
	Records int
	// Groups is the number of complete operation groups replayed.
	Groups int
	// DroppedTail is the number of trailing records discarded because
	// their group was incomplete (a crash mid-append).
	DroppedTail int
	// StaleSkipped counts records fenced out by the meta page's
	// generation watermark (retired by a checkpoint before the crash).
	StaleSkipped int
	// PagesRedone is the number of page images written back.
	PagesRedone int
	// KeysCounted is the key count established by the verification walk.
	KeysCounted uint64
	// MetaRepaired reports whether the meta page had to be rebuilt (torn
	// superblock recovered from a journaled image or the walk).
	MetaRepaired bool
}

// recoverIO batches all of recovery's synchronous I/O through one queue
// pair: the simulated device never recycles queue-pair slots, so the
// per-call AllocQueuePair in syncIO would exhaust it on a large region.
type recoverIO struct {
	dev nvme.Device
	qp  nvme.QueuePair
}

func newRecoverIO(dev nvme.Device) (*recoverIO, error) {
	qp, err := dev.AllocQueuePair(32)
	if err != nil {
		return nil, err
	}
	return &recoverIO{dev: dev, qp: qp}, nil
}

func (r *recoverIO) close() { r.qp.Free() }

func (r *recoverIO) do(cmd *nvme.Command) error {
	done := false
	var ioErr error
	cmd.Callback = func(c nvme.Completion) { done = true; ioErr = c.Err }
	if err := r.qp.Submit(cmd); err != nil {
		return err
	}
	// See syncIO: Advance covers simulated backings (including partition
	// or fault wrappers); anything still pending falls back to polling.
	if sd, ok := r.dev.(interface{ Advance() }); ok {
		sd.Advance()
		r.qp.Probe(0)
		if done {
			return ioErr
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for !done {
		r.qp.Probe(0)
		if time.Now().After(deadline) {
			return fmt.Errorf("core: recovery I/O timed out")
		}
	}
	return ioErr
}

func (r *recoverIO) read(lba, blocks uint64, buf []byte) error {
	return r.do(&nvme.Command{Op: nvme.OpRead, LBA: lba, Blocks: int(blocks), Buf: buf})
}

func (r *recoverIO) write(id storage.PageID, data []byte) error {
	return r.do(&nvme.Command{Op: nvme.OpWrite, LBA: uint64(id), Blocks: 1, Buf: data})
}

func (r *recoverIO) flush() error {
	return r.do(&nvme.Command{Op: nvme.OpFlush})
}

// Recover replays the journal region of a crashed device image and
// verifies the resulting tree, leaving the device in a state a fresh Tree
// can open. It is idempotent: running it twice (a crash during recovery)
// converges to the same image.
//
// The sequence is: read the superblock (tolerating a torn one — its
// replacement may be sitting in the journal); scan the WAL region; drop
// record groups fenced out by the superblock's generation watermark and
// any incomplete trailing group; redo surviving page images in log order;
// then walk the tree from the root, discarding nothing but verifying
// every reachable page decodes (a torn page that escaped the journal is a
// hard error — it would mean an acknowledged write was lost), recounting
// keys and the page-id watermark; finally persist a repaired superblock
// with a bumped generation fence and zero the region's first block.
func Recover(dev nvme.Device) (*storage.Meta, *RecoverReport, error) {
	rep := &RecoverReport{}
	io, err := newRecoverIO(dev)
	if err != nil {
		return nil, nil, err
	}
	defer io.close()

	pageSize := uint64(storage.PageSize)
	if bs := uint64(dev.BlockSize()); bs != pageSize {
		return nil, nil, fmt.Errorf("core: recover: block size %d, want %d", bs, pageSize)
	}

	// Superblock: may be torn (crash during a meta write). A torn meta is
	// recoverable when the journal holds its replacement image.
	metaBuf := make([]byte, storage.PageSize)
	if err := io.read(0, 1, metaBuf); err != nil {
		return nil, nil, err
	}
	meta, metaErr := storage.DecodeMeta(metaBuf)

	var walStart, walBlocks uint64
	var fenceGen uint32
	if metaErr == nil {
		if meta.WALBlocks == 0 || meta.WALStart == 0 {
			// Journal-less image (bulk-loaded, or formatted before the
			// region existed): nothing to replay, nothing to verify.
			return meta, rep, nil
		}
		walStart, walBlocks = meta.WALStart, meta.WALBlocks
		fenceGen = meta.WALGen
	} else {
		// Torn superblock: fall back to the region Format would have laid
		// out. If the device never had one, there is nothing to recover
		// from and the image is unusable.
		walStart, walBlocks = walGeometry(dev.NumBlocks())
		if walBlocks == 0 {
			return nil, nil, fmt.Errorf("core: recover: unreadable meta and no journal region: %w", metaErr)
		}
	}
	rep.Journaled = true

	// Read the whole region in bounded chunks.
	region := make([]byte, walBlocks*pageSize)
	const chunk = 128
	for off := uint64(0); off < walBlocks; off += chunk {
		n := walBlocks - off
		if n > chunk {
			n = chunk
		}
		if err := io.read(walStart+off, n, region[off*pageSize:(off+n)*pageSize]); err != nil {
			return nil, nil, err
		}
	}

	records, gen := wal.Recover(region)
	rep.Records = len(records)
	if gen < fenceGen {
		// Every scanned record was retired by a checkpoint whose meta
		// fence is durable; the pages they describe are already on disk.
		rep.StaleSkipped = len(records)
		records = nil
	} else if len(records) > 0 {
		rep.Generation = gen
	}

	// Parse records into operation groups. A group is cnt records
	// [opSeq, idx 0..cnt-1, pageID, image] emitted atomically by one
	// operation; only complete groups are redone — an incomplete trailing
	// group is an operation that was never acknowledged.
	type redoPage struct {
		id    storage.PageID
		image []byte
	}
	var redo []redoPage
	var group []redoPage
	var groupSeq uint64
	var journaledMeta []byte // newest journaled page-0 image, if any
	flushGroup := func() {
		for _, p := range group {
			if p.id == 0 {
				journaledMeta = p.image
			}
			redo = append(redo, p)
		}
		rep.Groups++
		group = group[:0]
	}
	for _, rec := range records {
		if len(rec) != journalRecordBytes {
			break // foreign record shape: stop scanning, drop the rest
		}
		seq := getJU64(rec[0:8])
		idx := int(rec[8])
		cnt := int(rec[9])
		id := storage.PageID(getJU64(rec[10:18]))
		if cnt < 1 || idx >= cnt {
			break // malformed: stop scanning, drop the rest
		}
		if idx == 0 {
			group = group[:0]
			groupSeq = seq
		} else if seq != groupSeq || idx != len(group) {
			group = group[:0]
			continue // out-of-order fragment: unusable
		}
		img := make([]byte, storage.PageSize)
		copy(img, rec[18:])
		group = append(group, redoPage{id: id, image: img})
		if idx == cnt-1 {
			flushGroup()
		}
	}
	rep.DroppedTail += len(group)

	// Redo in log order: later images of the same page overwrite earlier
	// ones, converging on the newest acknowledged state.
	for _, p := range redo {
		if !storage.VerifyPage(p.image) {
			return nil, nil, fmt.Errorf("core: recover: journaled image for page %d fails checksum", p.id)
		}
		if err := io.write(p.id, p.image); err != nil {
			return nil, nil, err
		}
		rep.PagesRedone++
	}

	// Re-establish the superblock. If page 0 was torn, the journal must
	// have supplied a replacement image (the meta page is journaled
	// whenever the root moves).
	if metaErr != nil {
		if journaledMeta == nil {
			return nil, nil, fmt.Errorf("core: recover: unreadable meta and no journaled replacement: %w", metaErr)
		}
		meta, err = storage.DecodeMeta(journaledMeta)
		if err != nil {
			return nil, nil, fmt.Errorf("core: recover: journaled meta image invalid: %w", err)
		}
		rep.MetaRepaired = true
	} else if rep.PagesRedone > 0 {
		if rebuilt, err2 := storage.DecodeMeta(journaledMetaOr(metaBuf, journaledMeta)); err2 == nil {
			meta = rebuilt
		}
	}
	if meta.WALStart == 0 || meta.WALBlocks == 0 {
		meta.WALStart, meta.WALBlocks = walStart, walBlocks
	}

	// Verification walk: every reachable page must read and decode (the
	// checksum rejects torn pages), recounting keys and the allocation
	// watermark. The walk is breadth-first per level using sibling links
	// on leaves and child fan-out on inner nodes.
	var keys uint64
	maxID := meta.Root
	level := []storage.PageID{meta.Root}
	buf := make([]byte, storage.PageSize)
	seen := 0
	for len(level) > 0 {
		var next []storage.PageID
		for _, id := range level {
			seen++
			if seen > int(dev.NumBlocks()) {
				return nil, nil, fmt.Errorf("core: recover: tree walk exceeds device size (cycle?)")
			}
			if err := io.read(uint64(id), 1, buf); err != nil {
				return nil, nil, err
			}
			n, err := storage.DecodeNode(id, buf)
			if err != nil {
				return nil, nil, fmt.Errorf("core: recover: page %d unreadable after replay: %w", id, err)
			}
			if id > maxID {
				maxID = id
			}
			if n.IsLeaf() {
				keys += uint64(len(n.Keys))
			} else {
				next = append(next, n.Children...)
			}
		}
		level = next
	}
	rep.KeysCounted = keys
	if meta.NumKeys != keys {
		meta.NumKeys = keys
		rep.MetaRepaired = true
	}
	if meta.Watermark < maxID+1 {
		meta.Watermark = maxID + 1
		rep.MetaRepaired = true
	}

	// Fence and persist: the new generation is strictly above anything in
	// the region, so a crash after this point can never replay the
	// records again; then physically empty the log.
	newGen := fenceGen
	if gen >= newGen {
		newGen = gen
	}
	newGen++
	if newGen < 1 {
		newGen = 1
	}
	meta.WALGen = newGen
	if err := io.write(0, meta.Encode()); err != nil {
		return nil, nil, err
	}
	if err := io.flush(); err != nil {
		return nil, nil, err
	}
	if err := io.write(storage.PageID(meta.WALStart), make([]byte, storage.PageSize)); err != nil {
		return nil, nil, err
	}
	if err := io.flush(); err != nil {
		return nil, nil, err
	}
	return meta, rep, nil
}

// journaledMetaOr prefers the newest journaled page-0 image over the one
// read from the device: when replay rewrote page 0, the on-device bytes
// read earlier are stale.
func journaledMetaOr(onDevice, journaled []byte) []byte {
	if journaled != nil {
		return journaled
	}
	return onDevice
}
