package core

import (
	"fmt"
	"testing"

	"github.com/patree/patree/internal/nvme"
	"github.com/patree/patree/internal/sim"
	"github.com/patree/patree/internal/simos"
	"github.com/patree/patree/internal/storage"
)

// newJournalRig builds a rig over a device of devBlocks blocks with the
// redo journal enabled.
func newJournalRig(t *testing.T, cfg Config, devBlocks uint64) *rig {
	t.Helper()
	cfg.Journal = true
	r := &rig{t: t}
	r.eng = sim.NewEngine()
	r.os = simos.New(r.eng, simos.Config{})
	r.dev = nvme.NewSimDevice(r.eng, nvme.SimConfig{Seed: 11, NumBlocks: devBlocks})
	meta, err := Format(r.dev)
	if err != nil {
		t.Fatal(err)
	}
	if meta.WALBlocks == 0 {
		t.Fatalf("device of %d blocks got no WAL region", devBlocks)
	}
	r.attach(t, cfg, meta)
	return r
}

// crashReopen loads a device-image snapshot into a fresh simulated
// device (modelling a machine restart over the surviving bytes), runs
// Recover, and returns the new rig plus the recovery report.
func crashReopen(t *testing.T, img map[uint64][]byte, cfg Config, devBlocks uint64) (*rig, *RecoverReport) {
	t.Helper()
	cfg.Journal = true
	r := &rig{t: t}
	r.eng = sim.NewEngine()
	r.os = simos.New(r.eng, simos.Config{})
	r.dev = nvme.NewSimDevice(r.eng, nvme.SimConfig{Seed: 12, NumBlocks: devBlocks})
	r.dev.LoadImage(img)
	meta, rep, err := Recover(r.dev)
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	r.attach(t, cfg, meta)
	return r, rep
}

func TestJournalCrashRecoveryWeak(t *testing.T) {
	const n = 300
	const blocks = 1 << 16
	cfg := Config{Persistence: WeakPersistence, BufferPages: 64}
	r := newJournalRig(t, cfg, blocks)
	for i := uint64(1); i <= n; i++ {
		if err := r.insert(i*7, fmt.Sprintf("v%d", i)).Err; err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	st := r.tree.StatsSnapshot()
	if st.JournalAppends == 0 {
		t.Fatal("journal enabled but no records appended")
	}

	// Crash: every acknowledged op's redo group is durable, but buffered
	// leaf pages may never have reached the device.
	img := r.dev.ImageSnapshot()
	r2, rep := crashReopen(t, img, cfg, blocks)
	if !rep.Journaled {
		t.Fatal("recovery did not scan the journal")
	}
	if rep.PagesRedone == 0 {
		t.Fatal("weak-mode crash should require page redo")
	}
	if rep.KeysCounted != n {
		t.Fatalf("recovered %d keys, want %d (report %+v)", rep.KeysCounted, n, rep)
	}
	for i := uint64(1); i <= n; i++ {
		res := r2.search(i * 7)
		if res.Err != nil {
			t.Fatalf("key %d lost after crash: %v", i*7, res.Err)
		}
		if want := fmt.Sprintf("v%d", i); string(res.Value) != want {
			t.Fatalf("key %d = %q, want %q", i*7, res.Value, want)
		}
	}
	// The reopened tree must accept new writes.
	if err := r2.insert(1, "post-crash").Err; err != nil {
		t.Fatalf("insert after recovery: %v", err)
	}
}

func TestJournalCrashRecoveryStrong(t *testing.T) {
	const n = 200
	const blocks = 1 << 16
	cfg := Config{Persistence: StrongPersistence, BufferPages: 64}
	r := newJournalRig(t, cfg, blocks)
	for i := uint64(1); i <= n; i++ {
		if err := r.insert(i, fmt.Sprintf("s%d", i)).Err; err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	img := r.dev.ImageSnapshot()
	r2, rep := crashReopen(t, img, cfg, blocks)
	if rep.KeysCounted != n {
		t.Fatalf("recovered %d keys, want %d", rep.KeysCounted, n)
	}
	// Strong mode already wrote pages in place; replay is idempotent.
	for i := uint64(1); i <= n; i++ {
		res := r2.search(i)
		if res.Err != nil || string(res.Value) != fmt.Sprintf("s%d", i) {
			t.Fatalf("key %d after crash: err=%v val=%q", i, res.Err, res.Value)
		}
	}
}

// TestRecoverIdempotent models a crash during recovery: running Recover
// again over the already-recovered image converges to the same tree.
func TestRecoverIdempotent(t *testing.T) {
	const n = 100
	const blocks = 1 << 16
	cfg := Config{Persistence: WeakPersistence, BufferPages: 64}
	r := newJournalRig(t, cfg, blocks)
	for i := uint64(1); i <= n; i++ {
		r.insert(i, "x")
	}
	img := r.dev.ImageSnapshot()

	eng := sim.NewEngine()
	dev := nvme.NewSimDevice(eng, nvme.SimConfig{Seed: 3, NumBlocks: blocks})
	dev.LoadImage(img)
	m1, rep1, err := Recover(dev)
	if err != nil {
		t.Fatal(err)
	}
	m2, rep2, err := Recover(dev)
	if err != nil {
		t.Fatalf("second recovery: %v", err)
	}
	if *m1 != *m2 && (m1.Root != m2.Root || m1.NumKeys != m2.NumKeys || m1.Height != m2.Height) {
		t.Fatalf("recovery not idempotent: %+v vs %+v", m1, m2)
	}
	if rep2.PagesRedone != 0 || rep2.Records != 0 {
		t.Fatalf("second recovery replayed work: %+v (first %+v)", rep2, rep1)
	}
	if m2.WALGen <= m1.WALGen-1 {
		t.Fatalf("generation fence did not advance: %d then %d", m1.WALGen, m2.WALGen)
	}
}

// TestJournalCheckpoint fills a small journal region until the tree
// checkpoints on its own, then verifies both the live tree and the
// crash-recovered image.
func TestJournalCheckpoint(t *testing.T) {
	const n = 500
	const blocks = 2048 // walGeometry: 256-block region at 1792
	cfg := Config{Persistence: WeakPersistence, BufferPages: 128}
	r := newJournalRig(t, cfg, blocks)
	for i := uint64(1); i <= n; i++ {
		if err := r.insert(i, fmt.Sprintf("c%d", i)).Err; err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	st := r.tree.StatsSnapshot()
	if st.Checkpoints == 0 {
		t.Fatalf("journal region never checkpointed (appends=%d)", st.JournalAppends)
	}
	for i := uint64(1); i <= n; i++ {
		if res := r.search(i); res.Err != nil {
			t.Fatalf("key %d after checkpoints: %v", i, res.Err)
		}
	}
	img := r.dev.ImageSnapshot()
	r2, rep := crashReopen(t, img, cfg, blocks)
	if rep.KeysCounted != n {
		t.Fatalf("recovered %d keys, want %d (report %+v)", rep.KeysCounted, n, rep)
	}
	if res := r2.search(n / 2); res.Err != nil {
		t.Fatalf("key %d after crash: %v", n/2, res.Err)
	}
}

// TestJournalExplicitSync verifies a user Sync acts as a checkpoint:
// the region is emptied and recovery afterwards has nothing to replay.
func TestJournalExplicitSync(t *testing.T) {
	const n = 50
	const blocks = 1 << 16
	cfg := Config{Persistence: WeakPersistence, BufferPages: 64}
	r := newJournalRig(t, cfg, blocks)
	for i := uint64(1); i <= n; i++ {
		r.insert(i, "y")
	}
	if err := r.do(NewSync(nil)).Err; err != nil {
		t.Fatalf("sync: %v", err)
	}
	st := r.tree.StatsSnapshot()
	if st.Checkpoints == 0 {
		t.Fatal("sync did not run the checkpoint pipeline")
	}
	img := r.dev.ImageSnapshot()
	r2, rep := crashReopen(t, img, cfg, blocks)
	if rep.Records != 0 || rep.PagesRedone != 0 {
		t.Fatalf("post-sync crash left journal work: %+v", rep)
	}
	if rep.KeysCounted != n {
		t.Fatalf("recovered %d keys, want %d", rep.KeysCounted, n)
	}
	for i := uint64(1); i <= n; i++ {
		if res := r2.search(i); res.Err != nil {
			t.Fatalf("key %d: %v", i, res.Err)
		}
	}
}

// TestJournalDisabledUnchanged pins that Journal=false trees behave as
// before: no appends, no checkpoints, sync still works.
func TestJournalDisabledUnchanged(t *testing.T) {
	r := newRig(t, Config{Persistence: WeakPersistence, BufferPages: 64})
	for i := uint64(1); i <= 50; i++ {
		r.insert(i, "z")
	}
	if err := r.do(NewSync(nil)).Err; err != nil {
		t.Fatal(err)
	}
	st := r.tree.StatsSnapshot()
	if st.JournalAppends != 0 || st.Checkpoints != 0 {
		t.Fatalf("journal activity while disabled: %+v", st)
	}
	meta, err := ReadMeta(r.dev)
	if err != nil {
		t.Fatal(err)
	}
	// The region description written by Format must survive syncs even
	// with the journal off, so a later journaled open can use it.
	if meta.WALBlocks == 0 || meta.WALStart == 0 {
		t.Fatalf("sync dropped the WAL region description: %+v", meta)
	}
}

// TestRecoverTornMeta tears page 0 and verifies recovery rebuilds it
// from the journaled meta image (journal groups include the meta page
// whenever the root moves, so a fresh tree always has one).
func TestRecoverTornMeta(t *testing.T) {
	const n = 120 // enough inserts to split the root at least once
	const blocks = 1 << 16
	cfg := Config{Persistence: WeakPersistence, BufferPages: 64}
	r := newJournalRig(t, cfg, blocks)
	for i := uint64(1); i <= n; i++ {
		r.insert(i, fmt.Sprintf("t%d", i))
	}
	img := r.dev.ImageSnapshot()
	// Tear the superblock: the crash landed mid-way through a meta write.
	torn := img[0]
	for i := 0; i < storage.PageSize/2; i++ {
		torn[i] = 0xFF
	}
	r2, rep := crashReopen(t, img, cfg, blocks)
	if !rep.MetaRepaired {
		t.Fatalf("torn meta not flagged as repaired: %+v", rep)
	}
	if rep.KeysCounted != n {
		t.Fatalf("recovered %d keys, want %d", rep.KeysCounted, n)
	}
	for i := uint64(1); i <= n; i++ {
		res := r2.search(i)
		if res.Err != nil || string(res.Value) != fmt.Sprintf("t%d", i) {
			t.Fatalf("key %d after torn-meta crash: err=%v val=%q", i, res.Err, res.Value)
		}
	}
}
