package core

import (
	"time"

	"github.com/patree/patree/internal/storage"
)

// This file is the reader side of intra-shard read concurrency: the
// optimistic descent that read-only goroutines run against the pubTable
// while the polled worker keeps mutating. The protocol is a hybrid of
// optimistic lock coupling and Lehman–Yao B-link repair:
//
//   - Descend from the published root register, at each level snapshotting
//     (frame, version) and searching the immutable image directly —
//     alloc-free until the final value copy, never touching the worker's
//     latch table or buffers.
//   - If the image's key-range bound says the key moved right (a
//     concurrent split), escape along the right-link instead of
//     restarting; this marks the path "broken" for validation purposes.
//   - A positive hit is returned after re-checking the leaf frame's
//     version: the value was current at the instant the still-validated
//     image was loaded, which lies within [invoke, return] — linearizable.
//   - A miss needs an absence proof: either every (frame, version) on an
//     unbroken path from the root is still unchanged (the tree cannot
//     have moved the key anywhere the descent did not look), or the path
//     escaped but the final leaf has an explicit bound covering the key
//     and its version still stands.
//   - Anything unresolvable — page not published, version storm, restarts
//     exhausted — falls back to the admission pipeline, which is always
//     correct. The fast path is an optimization with a proof obligation,
//     never a second source of truth.
//
// Read-your-writes: before descending, the reader consults the shard's
// pendingKeys registry; a key with an admitted-but-incomplete write takes
// the pipeline, where keyDeps orders the read behind that write.

const (
	// maxReadRestarts bounds full-descent retries before the optimistic
	// read gives up and falls back to the pipeline.
	maxReadRestarts = 4
	// maxReadDepth bounds recorded path length (tree heights are ~4 even
	// at billions of keys; anything deeper is corruption).
	maxReadDepth = 16
	// maxReadHops bounds total page visits per descent attempt, covering
	// right-link chains at every level.
	maxReadHops = 64
	// maxScanLeaves bounds one optimistic scan's leaf-chain walk.
	maxScanLeaves = 1 << 20
)

// pathEntry is one validated level of an optimistic descent.
type pathEntry struct {
	f   *pubFrame
	ver uint64
}

// ConcurrentReads reports whether the tree was opened with the optimistic
// reader table enabled.
func (t *Tree) ConcurrentReads() bool { return t.pub != nil }

// ReaderSnapshot returns the optimistic-reader counters. Safe from any
// goroutine; zero-valued when ConcurrentReads is off.
func (t *Tree) ReaderSnapshot() ReaderStats {
	if t.pub == nil {
		return ReaderStats{}
	}
	return t.pub.snapshot()
}

// ReadPending reports whether key has an admitted-but-incomplete write
// (the read-your-writes fence). Exposed for tests.
func (t *Tree) ReadPending(key uint64) bool {
	return t.pub != nil && t.pub.pend.pending(key)
}

// ConcurrentGet attempts a point lookup on the published-page table from
// the calling goroutine, without entering the admission pipeline. served
// reports whether the fast path produced an answer; when false the caller
// must route the read through the pipeline (Admit), which is always
// correct. Safe to call from any goroutine at any time; on a tree built
// with ConcurrentReads off it reports served=false immediately.
func (t *Tree) ConcurrentGet(key uint64) (value []byte, found, served bool) {
	p := t.pub
	if p == nil {
		return nil, false, false
	}
	p.attempts.Add(1)
	if p.pend.pending(key) {
		p.fallbackPending.Add(1)
		return nil, false, false
	}
	start := t.env.Now()
	value, found, served = p.get(key)
	if served {
		p.served.Add(1)
		p.recordLatency(time.Duration(t.env.Now() - start))
	}
	return value, found, served
}

// get runs the optimistic descent loop.
func (p *pubTable) get(key uint64) (value []byte, found, served bool) {
restart:
	for attempt := 0; attempt <= maxReadRestarts; attempt++ {
		if attempt > 0 {
			p.restarts.Add(1)
		}
		rootPacked := p.rootReg.Load()
		if rootPacked == 0 {
			p.fallbackMiss.Add(1)
			return nil, false, false
		}
		id := storage.PageID(rootPacked >> 8)
		var path [maxReadDepth]pathEntry
		depth := 0
		broken := false // true once a right-link escape left the root path

		for hop := 0; hop < maxReadHops; hop++ {
			f := p.frame(id)
			if f == nil {
				p.fallbackMiss.Add(1)
				return nil, false, false
			}
			img, ver, ok := f.loadImage()
			if !ok {
				continue restart
			}
			if img.hasHigh && key >= img.highKey {
				// A split moved our key range right since this image's
				// bound was set; chase the right-link rather than restart.
				if img.right == storage.NilPage {
					continue restart // bound and link disagree; re-descend
				}
				id = img.right
				broken = true
				p.escapes.Add(1)
				continue
			}
			if !storage.PageIsLeaf(img.data) {
				if depth >= maxReadDepth {
					continue restart
				}
				path[depth] = pathEntry{f, ver}
				depth++
				step, err := storage.SearchPageShared(img.data, key)
				if err != nil || step.Child == storage.NilPage {
					continue restart
				}
				id = step.Child
				continue
			}

			step, err := storage.SearchPageShared(img.data, key)
			if err != nil {
				continue restart
			}
			if step.Found {
				// The image was current when loaded iff the frame version
				// still stands; that instant is inside [invoke, return].
				if f.ver.Load() != ver {
					continue restart
				}
				return step.Value, true, true
			}
			// Absence proof. Unbroken path: revalidate every level — no
			// split or mutation can have moved the key out of the pages
			// this descent searched without bumping one of them.
			if !broken {
				if depth >= maxReadDepth {
					continue restart
				}
				path[depth] = pathEntry{f, ver}
				depth++
				if p.rootReg.Load() != rootPacked {
					continue restart
				}
				valid := true
				for i := 0; i < depth; i++ {
					if path[i].f.ver.Load() != path[i].ver {
						valid = false
						break
					}
				}
				if valid {
					return nil, false, true
				}
				continue restart
			}
			// Broken path: the leaf alone must prove absence — its bound
			// must cover the key (key < highKey checked above, and a leaf
			// reached by escape covers keys >= its low end by B-link
			// invariant) and its version must still stand.
			if img.hasHigh && f.ver.Load() == ver {
				return nil, false, true
			}
			continue restart
		}
		// Hop budget exhausted (pathological chain); restart.
	}
	p.fallbackRestarts.Add(1)
	return nil, false, false
}

// ConcurrentScan attempts a range scan over [lo, hi] (limit 0 = no limit)
// on the published-page table. served=false means the caller must fall
// back to the pipeline. Unlike points reads, scans take no pending-key
// fence: a scan is unordered with respect to concurrent point writes
// (exactly like a pipeline scan admitted before a write completes).
func (t *Tree) ConcurrentScan(lo, hi uint64, limit int) (pairs []KV, served bool) {
	p := t.pub
	if p == nil {
		return nil, false
	}
	p.scanAttempts.Add(1)
	pairs, served = p.scan(lo, hi, limit)
	if served {
		p.scanServed.Add(1)
	}
	return pairs, served
}

// scan descends to the leaf covering lo, then walks the leaf chain
// through the published table. Each leaf image is immutable, so every
// emitted pair existed at that leaf's publication instant; like the
// pipeline's latch-coupled scan, the walk as a whole is not a snapshot.
func (p *pubTable) scan(lo, hi uint64, limit int) ([]KV, bool) {
	if hi < lo {
		return nil, true
	}
restart:
	for attempt := 0; attempt <= maxReadRestarts; attempt++ {
		if attempt > 0 {
			p.restarts.Add(1)
		}
		rootPacked := p.rootReg.Load()
		if rootPacked == 0 {
			p.fallbackMiss.Add(1)
			return nil, false
		}
		id := storage.PageID(rootPacked >> 8)

		// Inner descent toward the leaf covering lo.
		var img *pubImage
		for hop := 0; ; hop++ {
			if hop >= maxReadHops {
				continue restart
			}
			f := p.frame(id)
			if f == nil {
				p.fallbackMiss.Add(1)
				return nil, false
			}
			var ok bool
			img, _, ok = f.loadImage()
			if !ok {
				continue restart
			}
			if img.hasHigh && lo >= img.highKey {
				if img.right == storage.NilPage {
					continue restart
				}
				id = img.right
				p.escapes.Add(1)
				continue
			}
			if storage.PageIsLeaf(img.data) {
				break
			}
			step, err := storage.SearchPageShared(img.data, lo)
			if err != nil || step.Child == storage.NilPage {
				continue restart
			}
			id = step.Child
		}

		// Leaf-chain walk. Right-links subsume split escapes here: a leaf
		// that split since we routed to it still chains to its new right
		// sibling, so no pair in [lo, hi] can be skipped.
		var out []KV
		for walked := 0; walked < maxScanLeaves; walked++ {
			next, beyond, err := storage.LeafRangeShared(img.data, lo, hi, func(k uint64, v []byte) bool {
				out = append(out, KV{Key: k, Value: v})
				return limit <= 0 || len(out) < limit
			})
			if err != nil {
				continue restart
			}
			if beyond || (limit > 0 && len(out) >= limit) || next == storage.NilPage {
				return out, true
			}
			f := p.frame(next)
			if f == nil {
				p.fallbackMiss.Add(1)
				return nil, false
			}
			var ok bool
			img, _, ok = f.loadImage()
			if !ok {
				continue restart
			}
			if !storage.PageIsLeaf(img.data) {
				continue restart
			}
		}
		continue restart
	}
	p.fallbackRestarts.Add(1)
	return nil, false
}
