package core

import "sync/atomic"

// opRing is a bounded multi-producer single-consumer queue of operations:
// the admission inbox between embedder goroutines (or simulation
// callbacks) and the working thread. It is a Vyukov-style sequence-number
// ring: producers claim slots by CAS on head and publish them by storing
// the slot's sequence; the single consumer pops in strict claim order, so
// admission stays FIFO even under concurrent producers.
//
// Unlike the mutex-guarded slice it replaces, the ring is bounded — a
// full ring is backpressure, surfaced to embedders as ErrBacklog or as a
// blocking Admit — and admission on the fast path costs one CAS and two
// atomic stores, with zero allocations.
type opRing struct {
	mask  uint64
	slots []ringSlot
	_     [64]byte // keep head off the slots' cache lines
	head  atomic.Uint64
	_     [64]byte // producers (head) and consumer (tail) do not false-share
	tail  uint64   // touched only by the consumer
}

// ringSlot pairs an operation with its publication sequence.
type ringSlot struct {
	seq atomic.Uint64
	op  *Op
	_   [48]byte // one slot per cache line: producers publish independently
}

// newOpRing returns a ring with capacity rounded up to a power of two.
func newOpRing(capacity int) *opRing {
	c := 8
	for c < capacity {
		c <<= 1
	}
	r := &opRing{mask: uint64(c - 1), slots: make([]ringSlot, c)}
	for i := range r.slots {
		r.slots[i].seq.Store(uint64(i))
	}
	return r
}

// Cap returns the ring capacity.
func (r *opRing) Cap() int { return len(r.slots) }

// TryPush claims one slot and publishes o. It returns false when the ring
// is full. Safe to call from any number of goroutines.
func (r *opRing) TryPush(o *Op) bool {
	for {
		pos := r.head.Load()
		slot := &r.slots[pos&r.mask]
		seq := slot.seq.Load()
		switch d := int64(seq - pos); {
		case d == 0:
			if r.head.CompareAndSwap(pos, pos+1) {
				slot.op = o
				slot.seq.Store(pos + 1)
				return true
			}
		case d < 0:
			return false // the slot is still occupied by the previous lap
		}
		// d > 0: another producer claimed pos between our loads; retry.
	}
}

// TryPushN claims len(ops) contiguous slots in one transaction and
// publishes them in order, so a batch is admitted atomically with respect
// to other producers: no foreign operation interleaves into the batch.
// It returns false without side effects when the ring lacks room (a batch
// larger than the ring can never succeed).
func (r *opRing) TryPushN(ops []*Op) bool {
	n := uint64(len(ops))
	if n == 0 {
		return true
	}
	if n > uint64(len(r.slots)) {
		return false
	}
	for {
		pos := r.head.Load()
		// With a single consumer, slots free in strict order: if the last
		// slot of the span is free for this lap, every earlier one is too.
		last := &r.slots[(pos+n-1)&r.mask]
		seq := last.seq.Load()
		switch d := int64(seq - (pos + n - 1)); {
		case d == 0:
			if r.head.CompareAndSwap(pos, pos+n) {
				for i, o := range ops {
					slot := &r.slots[(pos+uint64(i))&r.mask]
					slot.op = o
					slot.seq.Store(pos + uint64(i) + 1)
				}
				return true
			}
		case d < 0:
			return false // not enough room for the whole batch
		}
	}
}

// tryClaim claims n contiguous slots without publishing anything and
// returns the base position of the span. The claim holds room on the
// ring: the consumer reads the span's slots as empty until each is
// published via publishAt, and producers behind the claim queue up as
// usual. Callers must eventually publish every claimed slot (with real
// ops or no-ops) or the consumer stalls forever; pair with the tree's
// admitters protocol so the worker cannot exit mid-claim.
func (r *opRing) tryClaim(n int) (uint64, bool) {
	un := uint64(n)
	if un == 0 {
		return 0, true
	}
	if un > uint64(len(r.slots)) {
		return 0, false
	}
	for {
		pos := r.head.Load()
		// Same free-in-order argument as TryPushN: last slot free for this
		// lap implies the whole span is free.
		last := &r.slots[(pos+un-1)&r.mask]
		seq := last.seq.Load()
		switch d := int64(seq - (pos + un - 1)); {
		case d == 0:
			if r.head.CompareAndSwap(pos, pos+un) {
				return pos, true
			}
		case d < 0:
			return 0, false
		}
	}
}

// publishAt publishes o into the i-th slot of a span claimed at pos.
// Slots of one claim may be published in any order; the consumer blocks
// at the first unpublished slot, preserving FIFO.
func (r *opRing) publishAt(pos uint64, i int, o *Op) {
	slot := &r.slots[(pos+uint64(i))&r.mask]
	slot.op = o
	slot.seq.Store(pos + uint64(i) + 1)
}

// Pop removes the oldest published operation. It must only be called by
// the single consumer. A claimed-but-unpublished slot reads as empty, so
// Pop never reorders past an in-flight producer.
func (r *opRing) Pop() (*Op, bool) {
	pos := r.tail
	slot := &r.slots[pos&r.mask]
	seq := slot.seq.Load()
	if int64(seq-(pos+1)) < 0 {
		return nil, false
	}
	o := slot.op
	slot.op = nil
	slot.seq.Store(pos + r.mask + 1)
	r.tail = pos + 1
	return o, true
}

// Empty reports whether no operation is published or being published.
// Claimed-but-unpublished slots count as occupied, so a false Empty is
// never returned while a producer is mid-admission. Consumer-side only.
func (r *opRing) Empty() bool { return r.head.Load() == r.tail }

// Len approximates the number of queued operations (consumer-side).
func (r *opRing) Len() int { return int(r.head.Load() - r.tail) }
