package core

import (
	"fmt"
	"sync"
	"time"

	"github.com/patree/patree/internal/buffer"
	"github.com/patree/patree/internal/latch"
	"github.com/patree/patree/internal/sim"
	"github.com/patree/patree/internal/storage"
)

// Kind identifies an index operation type. Point and range search are the
// paper's "search operations"; insert, update and delete are its "update
// operations".
type Kind int

const (
	// KindSearch is a point lookup.
	KindSearch Kind = iota
	// KindRange is a range scan over [Key, EndKey] with an optional limit.
	KindRange
	// KindInsert inserts or overwrites a key.
	KindInsert
	// KindUpdate overwrites an existing key; it reports Found=false and
	// changes nothing when the key is absent.
	KindUpdate
	// KindDelete removes a key.
	KindDelete
	// KindSync flushes all buffered updates to the NVM (weak persistence)
	// and persists the meta page; provided per §III-C.
	KindSync
	// KindNop traverses the full admission pipeline (ring, ready queue,
	// completion callback) without touching the index. It exists so the
	// pipeline's own latency and allocation overhead can be measured in
	// isolation from tree work.
	KindNop
)

// numKinds sizes per-kind counters.
const numKinds = 7

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindSearch:
		return "search"
	case KindRange:
		return "range"
	case KindInsert:
		return "insert"
	case KindUpdate:
		return "update"
	case KindDelete:
		return "delete"
	case KindSync:
		return "sync"
	case KindNop:
		return "nop"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// IsUpdate reports whether the kind mutates the index.
func (k Kind) IsUpdate() bool {
	return k == KindInsert || k == KindUpdate || k == KindDelete || k == KindSync
}

// KV is one key/value pair returned by a range scan.
type KV struct {
	Key   uint64
	Value []byte
}

// Result is the outcome of a completed operation.
type Result struct {
	// Found reports whether the key existed (search/update/delete) or a
	// previous value was replaced (insert).
	Found bool
	// Value is the value found by a point search.
	Value []byte
	// Pairs are the range-scan results in ascending key order.
	Pairs []KV
	// Err is non-nil if the operation failed (e.g. value too large).
	Err error
	// Admitted and Completed bound the operation's processing; their
	// difference is the latency reported in the paper's figures.
	Admitted, Completed sim.Time
}

// Latency returns Completed - Admitted.
func (r Result) Latency() sim.Duration { return r.Completed.Sub(r.Admitted) }

// opState is the coarse position of an operation in its transition graph
// (§III-A, Figure 5). Waiting states are not separate enum values: an op
// is I/O-blocked or latch-blocked while its callbacks are outstanding,
// and the callbacks move it back to the ready set.
type opState int

const (
	stEntry        opState = iota // (re)start at the root
	stChildGranted                // latch on op.cur held; handle coupling
	stReadNode                    // need the content of op.cur
	stProcess                     // have op.curNode; run index logic
	stWriteNext                   // strong mode: issue the next queued write
	stJournal                     // journaled update: persist the redo group
	stSyncRun                     // sync op: drive the flush pipeline
	stDone
)

// heldLatch records one latch the op holds.
type heldLatch struct {
	id   storage.PageID
	mode latch.Mode
}

// writeReq is a queued page write (strong mode).
type writeReq struct {
	id   storage.PageID
	data []byte
}

// Op is one in-flight index operation: its parameters, its state-machine
// position, the latches it holds, and its pending I/O. Ops are created by
// the constructors below (or recycled via AcquireOp/Release), admitted
// with Tree.Admit, and completed via the Done callback on the working
// thread. After Done runs the tree holds no reference to the Op, so the
// callback may immediately Release it back to the pool.
type Op struct {
	kind   Kind
	key    uint64
	endKey uint64
	limit  int
	value  []byte

	// Done runs on the working thread when the operation completes.
	Done func(*Op)
	// Res is the outcome; valid once Done runs.
	Res Result
	// Tag is an embedder-owned correlation value (e.g. a batch index).
	// The tree never reads it; it is zeroed on Release.
	Tag uint64
	// Span is the distributed trace span id this op belongs to (0 = not
	// sampled). When nonzero and tracing is on, completion emits a link
	// instant tying the engine's op sequence number to the span, so a
	// merged serving trace can stitch client → server → shard. Zeroed on
	// Release; never read on any other path, so unsampled runs pay only a
	// zero-compare.
	Span uint64

	seq      uint64
	state    opState
	mode     latch.Mode
	depth    int // 0 at root
	cur      storage.PageID
	curNode  *storage.Node
	prevNode *storage.Node // parent retained while deciding child split
	held     []heldLatch
	inReady  bool

	// ioData carries a completed read's page image into stReadNode; ioFor
	// records which page it belongs to, so a stale image can never be
	// consumed for a different node (e.g. after the buffer turned the
	// original lookup into a hit, or after a root-change restart).
	// pendingErr carries an I/O error into the next scheduling of the op.
	ioData     []byte
	ioFor      storage.PageID
	pendingErr error

	// modified are the decoded nodes this op has mutated; they stay
	// latched until their writes are durable (strong) or buffered (weak).
	modified []*storage.Node
	writes   []writeReq
	wIdx     int
	commit   func()

	// sync bookkeeping
	syncStarted     bool
	syncQueue       []buffer.Dirty
	syncOutstanding int
	syncFlushSent   bool
	syncFlushDone   bool
	// journaled-sync bookkeeping: the checkpoint pipeline advances through
	// numbered phases (see runSyncJournaled); syncSent marks a single
	// in-flight phase command, syncResetDone that the in-memory log has
	// already been reset, syncFenced that this op owns the append fence.
	syncPhase     int
	syncSent      bool
	syncResetDone bool
	syncFenced    bool
	// internal marks tree-spawned operations (checkpoint syncs) so their
	// completion can release pipeline-serialization flags.
	internal bool

	// ioRetries is the op's cumulative transient-failure retry budget
	// consumed so far (compared against Config.MaxIORetries).
	ioRetries int

	// Redo-journal bookkeeping. jNeed is the log byte watermark that must
	// be durable before this op may be acknowledged (ordinary mutations
	// hand their WAL blocks to the tree-level writer and park on it);
	// jLiveMark/jParked record whether the op is counted in Tree.jLive /
	// parked in Tree.jWaiters, and postJournal whether it is counted in
	// Tree.postJournalLive (strong mode, between journal durability and
	// in-place write completion). jBlocks/jIdx serve the checkpoint
	// pipeline, which writes its fenced meta record itself (sequentially,
	// jIdx next) while the shared writer is drained.
	jBlocks     []writeReq
	jIdx        int
	jNeed       int
	jAppended   bool
	jLiveMark   bool
	jParked     bool
	postJournal bool

	holdsWrite bool

	// tree is the owner set at admission; pendingLatch is the single
	// outstanding latch request (an op waits on at most one latch at a
	// time), and grantFn is a reusable grant callback bound to this Op so
	// latch waits allocate no closure on the hot path. grantFn is built
	// lazily on first use and survives pool recycling.
	tree         *Tree
	pendingLatch heldLatch
	grantFn      func()

	// Stage-timing observability (see Stats.Stages). enqueuedAt is the
	// only producer-written field: it is stamped immediately before the
	// ring publish, whose release-store makes it visible to the worker
	// with the rest of the op. Everything below it is worker-only. The
	// Duration fields accumulate because an op re-enters the ready queue
	// (and may wait on latches or I/O) several times in its life.
	enqueuedAt sim.Time
	drainedAt  sim.Time
	readyAt    sim.Time
	latchFrom  sim.Time
	queueWait  time.Duration
	latchWait  time.Duration
	ioWait     time.Duration

	// pessimistic marks an update operation's second attempt: the first
	// descent takes shared latches on inner nodes and an exclusive latch
	// only on the leaf (optimistic latch coupling, per Bayer & Schkolnick
	// [3]); if the leaf turns out to need a split, the operation restarts
	// with exclusive coupling the whole way down.
	pessimistic bool

	// Per-key dependency chain (see Tree.keyDeps): keyGated marks a point
	// operation registered in its key's chain; keyNext is the next point
	// operation on the same key, parked until this one completes. Both are
	// worker-only.
	keyGated bool
	keyNext  *Op

	// Concurrent-reader publication state (Config.ConcurrentReads; see
	// published.go). pendingMark records that this write op's key is
	// counted in the shard's pending-key registry (set by the admitting
	// producer, cleared exactly once at teardown or admission failure).
	// pubSplits logs the splits this op performed and pubImgs captures
	// weak-mode page images at buffer-write time; finishOp replays both
	// into the published-page table before acking.
	pendingMark bool
	pubSplits   []pubSplit
	pubImgs     []writeReq

	// engMark records that this op is counted in the tree's engine-depth
	// gauge (set by the admitting producer before the ring push, cleared
	// exactly once at completion or on admission failure).
	engMark bool
}

// Kind returns the operation type.
func (o *Op) Kind() Kind { return o.kind }

// Key returns the primary key parameter.
func (o *Op) Key() uint64 { return o.key }

// NewSearch builds a point-search operation.
func NewSearch(key uint64, done func(*Op)) *Op {
	return &Op{kind: KindSearch, key: key, mode: latch.Shared, Done: done}
}

// NewRange builds a range scan over [lo, hi]; limit <= 0 means unlimited.
func NewRange(lo, hi uint64, limit int, done func(*Op)) *Op {
	return &Op{kind: KindRange, key: lo, endKey: hi, limit: limit, mode: latch.Shared, Done: done}
}

// NewInsert builds an insert-or-replace operation.
func NewInsert(key uint64, value []byte, done func(*Op)) *Op {
	return &Op{kind: KindInsert, key: key, value: value, mode: latch.Exclusive, Done: done}
}

// NewUpdate builds a replace-if-present operation.
func NewUpdate(key uint64, value []byte, done func(*Op)) *Op {
	return &Op{kind: KindUpdate, key: key, value: value, mode: latch.Exclusive, Done: done}
}

// NewDelete builds a delete operation.
func NewDelete(key uint64, done func(*Op)) *Op {
	return &Op{kind: KindDelete, key: key, mode: latch.Exclusive, Done: done}
}

// NewSync builds a sync operation (§III-C).
func NewSync(done func(*Op)) *Op {
	return &Op{kind: KindSync, mode: latch.Exclusive, Done: done}
}

// NewNop builds a pipeline no-op (see KindNop).
func NewNop(done func(*Op)) *Op {
	return &Op{kind: KindNop, mode: latch.Shared, Done: done}
}

// ─── Pooled lifecycle ───────────────────────────────────────────────────
//
// The admission pipeline recycles operations: an embedder acquires an Op,
// initializes it with one of the Init methods, sets Done, admits it, and
// the completion callback hands the Op back with Release. The pool keeps
// the per-op slices (held latches, modified nodes, queued writes) so a
// steady-state operation allocates nothing on admission.

var opPool = sync.Pool{New: func() any { return new(Op) }}

// AcquireOp returns a cleared operation from the pool. It must be
// initialized with exactly one Init method before admission.
func AcquireOp() *Op { return opPool.Get().(*Op) }

// Release resets o and returns it to the pool. The caller must hold the
// only reference: call it from (or after) the Done callback, never while
// the operation is in flight.
func (o *Op) Release() {
	o.reset()
	opPool.Put(o)
}

// reset clears every field for reuse, keeping slice capacity but dropping
// the pointers they hold so recycled ops retain no page data. grantFn
// survives recycling: it dereferences o.tree (re-set at each admission)
// at grant time, so one closure serves the op for its pooled lifetime.
func (o *Op) reset() {
	o.kind = 0
	o.key = 0
	o.endKey = 0
	o.limit = 0
	o.value = nil
	o.Done = nil
	o.Res = Result{}
	o.Tag = 0
	o.Span = 0
	o.seq = 0
	o.state = stEntry
	o.mode = 0
	o.depth = 0
	o.cur = 0
	o.curNode = nil
	o.prevNode = nil
	o.held = o.held[:0]
	o.inReady = false
	o.ioData = nil
	o.ioFor = 0
	o.pendingErr = nil
	for i := range o.modified {
		o.modified[i] = nil
	}
	o.modified = o.modified[:0]
	for i := range o.writes {
		o.writes[i] = writeReq{}
	}
	o.writes = o.writes[:0]
	o.wIdx = 0
	o.commit = nil
	o.syncStarted = false
	o.syncQueue = nil
	o.syncOutstanding = 0
	o.syncFlushSent = false
	o.syncFlushDone = false
	o.syncPhase = 0
	o.syncSent = false
	o.syncResetDone = false
	o.syncFenced = false
	o.internal = false
	o.ioRetries = 0
	for i := range o.jBlocks {
		o.jBlocks[i] = writeReq{}
	}
	o.jBlocks = o.jBlocks[:0]
	o.jIdx = 0
	o.jNeed = 0
	o.jAppended = false
	o.jLiveMark = false
	o.jParked = false
	o.postJournal = false
	o.holdsWrite = false
	o.tree = nil
	o.pendingLatch = heldLatch{}
	o.enqueuedAt = 0
	o.drainedAt = 0
	o.readyAt = 0
	o.latchFrom = 0
	o.queueWait = 0
	o.latchWait = 0
	o.ioWait = 0
	o.pessimistic = false
	o.keyGated = false
	o.keyNext = nil
	o.pendingMark = false
	o.engMark = false
	o.pubSplits = o.pubSplits[:0]
	for i := range o.pubImgs {
		o.pubImgs[i] = writeReq{}
	}
	o.pubImgs = o.pubImgs[:0]
}

// InitSearch configures o as a point search and returns it.
func (o *Op) InitSearch(key uint64) *Op {
	o.kind, o.key, o.mode = KindSearch, key, latch.Shared
	return o
}

// InitRange configures o as a range scan over [lo, hi]; limit <= 0 means
// unlimited.
func (o *Op) InitRange(lo, hi uint64, limit int) *Op {
	o.kind, o.key, o.endKey, o.limit, o.mode = KindRange, lo, hi, limit, latch.Shared
	return o
}

// InitInsert configures o as an insert-or-replace.
func (o *Op) InitInsert(key uint64, value []byte) *Op {
	o.kind, o.key, o.value, o.mode = KindInsert, key, value, latch.Exclusive
	return o
}

// InitUpdate configures o as a replace-if-present.
func (o *Op) InitUpdate(key uint64, value []byte) *Op {
	o.kind, o.key, o.value, o.mode = KindUpdate, key, value, latch.Exclusive
	return o
}

// InitDelete configures o as a delete.
func (o *Op) InitDelete(key uint64) *Op {
	o.kind, o.key, o.mode = KindDelete, key, latch.Exclusive
	return o
}

// InitSync configures o as a sync (§III-C).
func (o *Op) InitSync() *Op {
	o.kind, o.mode = KindSync, latch.Exclusive
	return o
}

// InitNop configures o as a pipeline no-op (see KindNop).
func (o *Op) InitNop() *Op {
	o.kind, o.mode = KindNop, latch.Shared
	return o
}
