package core

import "github.com/patree/patree/internal/trace"

// Trace event codes emitted by the working thread. Each code renders as
// its own track in the Chrome trace export; the class dimension carries
// the operation kind (or classNone for events not tied to one op).
const (
	tcAdmitWait = iota // slice: producer blocked on a full admission ring
	tcInbox            // slice: ring residency (publish → drain)
	tcQueueWait        // slice: one ready-queue wait (push → pop)
	tcLatchWait        // slice: one latch wait (request → grant)
	tcIORead           // slice: read submit → completion detected (arg: page)
	tcIOWrite          // slice: write submit → completion detected (arg: page)
	tcDeliver          // slice: completion callback execution
	tcOp               // slice: whole operation (admitted → completed)
	tcProbe            // instant: probe that reaped completions (arg: count)
	tcYield            // slice: scheduler yield
	tcSpan             // instant: serving-span link (seq = op seq, arg = span id)
)

var traceCodeNames = []string{
	"admit-wait", "inbox", "queue-wait", "latch-wait",
	"io-read", "io-write", "deliver", "op", "probe", "yield",
	trace.SpanCodeLink,
}

// classNone labels events not attributable to a single operation
// (background write-back I/O, probes, yields).
const classNone = numKinds

var traceClassNames = []string{
	KindSearch.String(), KindRange.String(), KindInsert.String(),
	KindUpdate.String(), KindDelete.String(), KindSync.String(),
	KindNop.String(), "-",
}

// NewTracer builds a ring tracer of the given capacity labelled with the
// tree's event-code and operation-kind tables, ready for Config.Tracer.
func NewTracer(capacity int) *trace.Tracer {
	return trace.New(capacity, traceCodeNames, traceClassNames)
}

// TraceNames returns the engine's trace code and class name tables, for
// labelling a trace.Process holding this tree's events in a merged
// multi-emitter export (trace.WriteChromeJSONFlows).
func TraceNames() (codes, classes []string) { return traceCodeNames, traceClassNames }
