package core

import (
	"fmt"
	"testing"
	"time"

	"github.com/patree/patree/internal/nvme"
	"github.com/patree/patree/internal/sim"
	"github.com/patree/patree/internal/simos"
	"github.com/patree/patree/internal/storage"
)

// TestBulkLoadThenOperate verifies the experiment path: bulk-load a tree,
// open it, and run mixed operations against a model.
func TestBulkLoadThenOperate(t *testing.T) {
	eng := sim.NewEngine()
	osched := simos.New(eng, simos.Config{})
	dev := nvme.NewSimDevice(eng, nvme.SimConfig{Seed: 31})
	var pairs []KV
	model := map[uint64]string{}
	for i := 0; i < 5000; i++ {
		k := uint64(i * 7)
		v := fmt.Sprintf("v%d", k)
		pairs = append(pairs, KV{Key: k, Value: []byte(v)})
		model[k] = v
	}
	meta, err := BulkLoad(dev, pairs, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	if meta.NumKeys != 5000 || meta.Height < 3 {
		t.Fatalf("meta = %+v", meta)
	}
	var tree *Tree
	th := osched.Spawn("patree", func(*simos.Thread) { tree.Run() })
	tree, err = New(dev, Config{Prioritized: true, BufferPages: 256}, SimEnv{T: th}, meta)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		tree.Stop()
		eng.RunFor(time.Second)
	}()
	do := func(op *Op) Result {
		done := false
		op.Done = func(*Op) { done = true }
		eng.After(0, func() { tree.Admit(op) })
		for !done && eng.Step() {
		}
		if !done {
			t.Fatal("op never completed")
		}
		return op.Res
	}
	// Reads of bulk-loaded data.
	for _, k := range []uint64{0, 7, 34993, 34999 * 0} {
		res := do(NewSearch(k, nil))
		want, exists := model[k]
		if res.Found != exists || (exists && string(res.Value) != want) {
			t.Fatalf("key %d: %+v", k, res)
		}
	}
	// Inserts interleave correctly with the bulk-loaded structure.
	for i := 0; i < 500; i++ {
		k := uint64(i*7 + 3) // between existing keys
		if res := do(NewInsert(k, []byte("new"), nil)); res.Err != nil {
			t.Fatal(res.Err)
		}
	}
	res := do(NewRange(0, 100, 0, nil))
	// Keys 0,7,14..98 plus 3,10,...,94: 15 + 14 = 29 pairs in [0,100].
	count := 0
	for k := range model {
		if k <= 100 {
			count++
		}
	}
	for i := 0; i < 500; i++ {
		if k := uint64(i*7 + 3); k <= 100 {
			count++
		}
	}
	if len(res.Pairs) != count {
		t.Fatalf("range returned %d pairs, want %d", len(res.Pairs), count)
	}
}

// TestBulkLoadRejectsUnsorted guards the preload contract.
func TestBulkLoadRejectsUnsorted(t *testing.T) {
	eng := sim.NewEngine()
	dev := nvme.NewSimDevice(eng, nvme.SimConfig{Seed: 1})
	if _, err := BulkLoad(dev, []KV{{Key: 2}, {Key: 1}}, 0.7); err == nil {
		t.Fatal("unsorted pairs accepted")
	}
	if _, err := BulkLoad(dev, []KV{{Key: 1}, {Key: 1}}, 0.7); err == nil {
		t.Fatal("duplicate pairs accepted")
	}
	if _, err := BulkLoad(dev, []KV{{Key: 1, Value: make([]byte, storage.MaxValueSize+1)}}, 0.7); err == nil {
		t.Fatal("oversized value accepted")
	}
}

// TestSyncDuringConcurrentUpdates exercises the §III-C epoch guard end to
// end: a Sync overlapping further updates must not lose them.
func TestSyncDuringConcurrentUpdates(t *testing.T) {
	r := newRig(t, Config{Persistence: WeakPersistence, BufferPages: 1024})
	// Dirty a bunch of pages.
	for i := 0; i < 200; i++ {
		r.insert(uint64(i), "v1")
	}
	// Admit a sync together with a second wave of updates.
	var ops []*Op
	ops = append(ops, NewSync(nil))
	for i := 0; i < 200; i++ {
		ops = append(ops, NewInsert(uint64(i), []byte("v2"), nil))
	}
	ops = append(ops, NewSync(nil))
	r.doAll(ops)
	// After the final sync, the device must hold v2 everywhere.
	meta, err := ReadMeta(r.dev)
	if err != nil {
		t.Fatal(err)
	}
	got := collectFromDevice(t, r.dev, meta)
	for i := 0; i < 200; i++ {
		if string(got[uint64(i)]) != "v2" {
			t.Fatalf("key %d = %q after overlapping sync", i, got[uint64(i)])
		}
	}
}

// TestRangeScanDuringInserts exercises leaf-chain coupling while splits
// reshape the chain.
func TestRangeScanDuringInserts(t *testing.T) {
	r := newRig(t, Config{Prioritized: true})
	for i := 0; i < 400; i++ {
		r.insert(uint64(i*10), "v")
	}
	var ops []*Op
	for i := 0; i < 200; i++ {
		ops = append(ops, NewInsert(uint64(i*10+5), []byte("mid"), nil))
		ops = append(ops, NewRange(0, 4000, 0, nil))
	}
	r.doAll(ops)
	for _, op := range ops {
		if op.Res.Err != nil {
			t.Fatal(op.Res.Err)
		}
		if op.Kind() == KindRange {
			// Scans must always be sorted and never shrink below the
			// preloaded density of the range.
			p := op.Res.Pairs
			for i := 1; i < len(p); i++ {
				if p[i].Key <= p[i-1].Key {
					t.Fatal("scan out of order during splits")
				}
			}
			if len(p) < 400 {
				t.Fatalf("scan saw %d keys, fewer than preloaded", len(p))
			}
		}
	}
}

// TestPADVariants runs the dedicated-poller modes for a bounded window.
// PAD+ (model-gated poller) completes everything; PAD (spin poller) makes
// little or no progress because its probe storm starves the device
// controller — the documented Figure 11 behaviour of this model.
func TestPADVariants(t *testing.T) {
	run := func(mode Poller) int {
		eng := sim.NewEngine()
		osched := simos.New(eng, simos.Config{})
		dev := nvme.NewSimDevice(eng, nvme.SimConfig{Seed: 9})
		meta, _ := Format(dev)
		var tree *Tree
		th := osched.Spawn("patree", func(*simos.Thread) { tree.Run() })
		tree, err := New(dev, Config{Poller: mode}, SimEnv{T: th}, meta)
		if err != nil {
			t.Fatal(err)
		}
		osched.Spawn("poller", func(pt *simos.Thread) {
			tree.RunPoller(SimEnv{T: pt}, tree.PollerPolicy())
		})
		done := 0
		eng.After(0, func() {
			for i := 0; i < 50; i++ {
				tree.Admit(NewInsert(uint64(i), []byte("v"), func(*Op) { done++ }))
			}
		})
		eng.RunUntil(sim.Time(100 * time.Millisecond))
		tree.Stop()
		eng.RunFor(10 * time.Millisecond)
		return done
	}
	if got := run(PollerDedicatedModel); got != 50 {
		t.Fatalf("PAD+: completed %d/50", got)
	}
	if got := run(PollerDedicatedSpin); got >= 50 {
		t.Fatalf("PAD completed %d/50; expected starvation from spin-probing", got)
	}
}

// TestOpAccessors covers the small public surface of Op/Result.
func TestOpAccessors(t *testing.T) {
	op := NewInsert(9, []byte("v"), nil)
	if op.Kind() != KindInsert || op.Key() != 9 {
		t.Fatal("accessors wrong")
	}
	if !KindDelete.IsUpdate() || KindSearch.IsUpdate() {
		t.Fatal("IsUpdate wrong")
	}
	for k := KindSearch; k <= KindSync; k++ {
		if k.String() == "" {
			t.Fatal("empty kind name")
		}
	}
	if Kind(99).String() != "Kind(99)" {
		t.Fatal("unknown kind name")
	}
	if StrongPersistence.String() != "strong" || WeakPersistence.String() != "weak" {
		t.Fatal("persistence names")
	}
	if PollerInline.String() != "inline" || PollerDedicatedSpin.String() != "PAD" || PollerDedicatedModel.String() != "PAD+" {
		t.Fatal("poller names")
	}
}
