package core

// MergeRuns k-way merges n key-ascending runs, emitting winners in
// global key order. It is the one merge loop shared by every
// scatter-gather consumer — the root package's per-shard scan merge and
// the LSM baseline's compaction and range-scan merges — so the selection
// logic lives (and is tested) in exactly one place.
//
// Runs are addressed through callbacks by (run, index), so callers merge
// any slice shape without copying into a common element type: length(i)
// is run i's length and key(i, j) its j-th key. emit receives the
// winning (run, index); returning false stops the merge early (a limit).
//
// When newestWins is true the runs are assumed ordered newest first and
// every run's entries equal to the emitted key are consumed alongside it
// — LSM shadowing semantics, where run 0 (the memtable) wins duplicates.
// When false only the winning entry is consumed, which is all disjoint
// keyspaces (one run per shard) need.
func MergeRuns(n int, length func(i int) int, key func(i, j int) uint64, newestWins bool, emit func(i, j int) bool) {
	idx := make([]int, n)
	for {
		best := -1
		var bestKey uint64
		for i := 0; i < n; i++ {
			if idx[i] >= length(i) {
				continue
			}
			if k := key(i, idx[i]); best < 0 || k < bestKey {
				best, bestKey = i, k
			}
		}
		if best < 0 {
			return
		}
		j := idx[best]
		if newestWins {
			for i := 0; i < n; i++ {
				for idx[i] < length(i) && key(i, idx[i]) == bestKey {
					idx[i]++
				}
			}
		} else {
			idx[best]++
		}
		if !emit(best, j) {
			return
		}
	}
}
