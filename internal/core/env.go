// Package core implements PA-Tree itself: a B+ tree whose index
// operations are decomposed into state machines (§III-A) that one working
// thread executes in an interleaved, polled-mode, asynchronous fashion,
// with operation latches (§III-B), strong/weak persistent buffering
// (§III-C) and the workload-aware scheduler of §IV.
package core

import (
	"runtime"
	"sync/atomic"
	"time"

	"github.com/patree/patree/internal/metrics"
	"github.com/patree/patree/internal/sim"
	"github.com/patree/patree/internal/simos"
)

// Env abstracts the execution context of the working thread, so the same
// tree code runs on a simulated thread (deterministic experiments,
// virtual-time CPU accounting) and on a real goroutine (the examples).
type Env interface {
	// Now returns the current time on the environment's clock.
	Now() sim.Time
	// Work accounts d of CPU time in category cat. On the simulated
	// environment this actually consumes virtual CPU (and may involve
	// preemption); on the real environment it only accounts.
	Work(cat metrics.CPUCategory, d time.Duration)
	// Sleep blocks the working thread for d, yielding its CPU.
	Sleep(d time.Duration)
	// CPU returns the cumulative per-category CPU account.
	CPU() *metrics.CPUAccount
}

// SimEnv adapts a simulated OS thread to Env.
type SimEnv struct{ T *simos.Thread }

// Now implements Env.
func (e SimEnv) Now() sim.Time { return e.T.Now() }

// Work implements Env.
func (e SimEnv) Work(cat metrics.CPUCategory, d time.Duration) { e.T.Work(cat, d) }

// Sleep implements Env.
func (e SimEnv) Sleep(d time.Duration) { e.T.Sleep(d) }

// CPU implements Env.
func (e SimEnv) CPU() *metrics.CPUAccount { return &e.T.CPU }

// RealEnv is the wall-clock environment used by the examples: Work only
// accounts (the real CPU cost is whatever the host spends), Sleep parks
// on a wakeable timer, and Now is time since construction.
type RealEnv struct {
	start   time.Time
	account *metrics.CPUAccount
	wake    chan struct{}
	// timer is reused across Sleeps (Sleep is only called by the working
	// thread), so an idle-yielding worker allocates nothing per yield.
	timer   *time.Timer
	stopped atomic.Bool
}

// NewRealEnv returns a wall-clock environment starting now.
func NewRealEnv() *RealEnv {
	return &RealEnv{start: time.Now(), account: &metrics.CPUAccount{}, wake: make(chan struct{}, 1)}
}

// Now implements Env.
func (e *RealEnv) Now() sim.Time { return sim.Time(time.Since(e.start)) }

// Work implements Env.
func (e *RealEnv) Work(cat metrics.CPUCategory, d time.Duration) { e.account.Charge(cat, d) }

// Sleep implements Env: it parks for d but returns early on Wake, so a
// yielding working thread reacts to a fresh admission immediately
// instead of finishing its yield quantum (admission-aware wakeup).
func (e *RealEnv) Sleep(d time.Duration) {
	if e.timer == nil {
		e.timer = time.NewTimer(d)
	} else {
		e.timer.Reset(d)
	}
	select {
	case <-e.timer.C:
	case <-e.wake:
		// Disarm for the next Reset; if the timer fired concurrently its
		// token is guaranteed to reach the buffered channel — consume it.
		if !e.timer.Stop() {
			<-e.timer.C
		}
	}
}

// Wake interrupts a concurrent (or the next) Sleep or SpinWait. It
// never blocks and coalesces: any number of wakes before the sleeper
// looks collapse into one. Safe from any goroutine.
func (e *RealEnv) Wake() {
	select {
	case e.wake <- struct{}{}:
	default:
	}
}

// SpinWait busy-polls for up to d, returning early on Wake. It is the
// polled-mode alternative to Sleep for yields below OS timer
// resolution: a 20µs timer sleep on a mainstream kernel routinely
// overshoots past a millisecond, which would put the timer — not the
// device — on the I/O completion path.
func (e *RealEnv) SpinWait(d time.Duration) {
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		select {
		case <-e.wake:
			return
		default:
		}
		runtime.Gosched()
	}
}

// CPU implements Env.
func (e *RealEnv) CPU() *metrics.CPUAccount { return e.account }
