package core

import (
	"bytes"
	"fmt"
	"sort"
	"testing"
	"time"

	"github.com/patree/patree/internal/metrics"
	"github.com/patree/patree/internal/nvme"
	"github.com/patree/patree/internal/sim"
	"github.com/patree/patree/internal/simos"
	"github.com/patree/patree/internal/storage"
)

// rig wires an engine, a simulated 8-core machine, a device and a tree
// with its working thread, mirroring how the experiment harness runs.
type rig struct {
	t    *testing.T
	eng  *sim.Engine
	os   *simos.Sched
	dev  *nvme.SimDevice
	tree *Tree
	th   *simos.Thread
}

func newRig(t *testing.T, cfg Config) *rig {
	t.Helper()
	r := &rig{t: t}
	r.eng = sim.NewEngine()
	r.os = simos.New(r.eng, simos.Config{})
	r.dev = nvme.NewSimDevice(r.eng, nvme.SimConfig{Seed: 11})
	meta, err := Format(r.dev)
	if err != nil {
		t.Fatal(err)
	}
	r.attach(t, cfg, meta)
	return r
}

// attach spawns a working thread running a tree over r.dev with meta.
func (r *rig) attach(t *testing.T, cfg Config, meta *storage.Meta) {
	r.th = r.os.Spawn("patree", func(*simos.Thread) { r.tree.Run() })
	tree, err := New(r.dev, cfg, SimEnv{T: r.th}, meta)
	if err != nil {
		t.Fatal(err)
	}
	r.tree = tree
	t.Cleanup(func() {
		r.tree.Stop()
		r.eng.RunFor(time.Second)
	})
}

// do admits one op and drives the simulation until it completes.
func (r *rig) do(op *Op) Result {
	r.t.Helper()
	done := false
	op.Done = func(*Op) { done = true }
	r.eng.After(0, func() { r.tree.Admit(op) })
	for !done && r.eng.Step() {
	}
	if !done {
		r.t.Fatal("operation never completed")
	}
	return op.Res
}

// doAll admits ops together (interleaved execution) and waits for all.
func (r *rig) doAll(ops []*Op) {
	r.t.Helper()
	remaining := len(ops)
	for _, op := range ops {
		op.Done = func(*Op) { remaining-- }
	}
	r.eng.After(0, func() {
		for _, op := range ops {
			r.tree.Admit(op)
		}
	})
	for remaining > 0 && r.eng.Step() {
	}
	if remaining > 0 {
		r.t.Fatalf("%d operations never completed", remaining)
	}
}

func (r *rig) insert(key uint64, val string) Result { return r.do(NewInsert(key, []byte(val), nil)) }
func (r *rig) search(key uint64) Result             { return r.do(NewSearch(key, nil)) }
func (r *rig) delete(key uint64) Result             { return r.do(NewDelete(key, nil)) }

// collectFromDevice walks the on-device image (no buffers) and returns
// all pairs, verifying structural invariants along the way.
func collectFromDevice(t *testing.T, dev *nvme.SimDevice, meta *storage.Meta) map[uint64][]byte {
	t.Helper()
	read := func(id storage.PageID) *storage.Node {
		buf := make([]byte, storage.PageSize)
		dev.ReadAt(uint64(id), buf)
		n, err := storage.DecodeNode(id, buf)
		if err != nil {
			t.Fatalf("decode page %d: %v", id, err)
		}
		return n
	}
	// Descend to the leftmost leaf, checking levels decrease.
	id := meta.Root
	n := read(id)
	if int(n.Level)+1 != int(meta.Height) {
		t.Fatalf("root level %d vs height %d", n.Level, meta.Height)
	}
	for !n.IsLeaf() {
		if len(n.Children) != n.NumKeys()+1 {
			t.Fatalf("inner %d: %d keys, %d children", n.ID, n.NumKeys(), len(n.Children))
		}
		child := read(n.Children[0])
		if child.Level != n.Level-1 {
			t.Fatalf("level skip: %d -> %d", n.Level, child.Level)
		}
		n = child
	}
	// Walk the leaf chain.
	out := map[uint64][]byte{}
	var last uint64
	first := true
	for {
		for i, k := range n.Keys {
			if !first && k <= last {
				t.Fatalf("keys not strictly increasing: %d after %d", k, last)
			}
			first = false
			last = k
			out[k] = append([]byte(nil), n.Vals[i]...)
		}
		if n.Next == storage.NilPage {
			break
		}
		n = read(n.Next)
		if !n.IsLeaf() {
			t.Fatalf("leaf chain reached non-leaf %d", n.ID)
		}
	}
	return out
}

func TestBasicInsertSearch(t *testing.T) {
	r := newRig(t, Config{})
	if res := r.insert(42, "answer"); res.Err != nil || res.Found {
		t.Fatalf("insert: %+v", res)
	}
	res := r.search(42)
	if res.Err != nil || !res.Found || string(res.Value) != "answer" {
		t.Fatalf("search: %+v", res)
	}
	if res := r.search(43); res.Found {
		t.Fatal("found missing key")
	}
	if res.Latency() <= 0 {
		t.Fatal("non-positive latency")
	}
}

func TestInsertOverwrite(t *testing.T) {
	r := newRig(t, Config{})
	r.insert(1, "a")
	if res := r.insert(1, "b"); !res.Found {
		t.Fatal("overwrite not reported")
	}
	if res := r.search(1); string(res.Value) != "b" {
		t.Fatalf("value = %q", res.Value)
	}
	if r.tree.NumKeys() != 1 {
		t.Fatalf("numKeys = %d", r.tree.NumKeys())
	}
}

func TestUpdateSemantics(t *testing.T) {
	r := newRig(t, Config{})
	if res := r.do(NewUpdate(5, []byte("x"), nil)); res.Found {
		t.Fatal("update of absent key reported found")
	}
	if res := r.search(5); res.Found {
		t.Fatal("update of absent key inserted it")
	}
	r.insert(5, "v1")
	if res := r.do(NewUpdate(5, []byte("v2"), nil)); !res.Found {
		t.Fatal("update of present key not found")
	}
	if res := r.search(5); string(res.Value) != "v2" {
		t.Fatalf("value = %q", res.Value)
	}
}

func TestDelete(t *testing.T) {
	r := newRig(t, Config{})
	r.insert(7, "seven")
	if res := r.delete(7); !res.Found {
		t.Fatal("delete did not find key")
	}
	if res := r.search(7); res.Found {
		t.Fatal("deleted key still present")
	}
	if res := r.delete(7); res.Found {
		t.Fatal("double delete reported found")
	}
	if r.tree.NumKeys() != 0 {
		t.Fatalf("numKeys = %d", r.tree.NumKeys())
	}
}

func TestGrowthThroughSplitsAndModelCheck(t *testing.T) {
	r := newRig(t, Config{})
	// Enough sequential+shuffled inserts to force multi-level splits.
	const n = 3000
	rng := sim.NewRNG(5)
	model := map[uint64]string{}
	for i := 0; i < n; i++ {
		k := rng.Uint64n(10 * n)
		v := fmt.Sprintf("v%d", k)
		r.insert(k, v)
		model[k] = v
	}
	if r.tree.Height() < 3 {
		t.Fatalf("height = %d, want >= 3 after %d inserts", r.tree.Height(), n)
	}
	if r.tree.NumKeys() != uint64(len(model)) {
		t.Fatalf("numKeys = %d, want %d", r.tree.NumKeys(), len(model))
	}
	// Spot-check membership.
	for k, v := range model {
		res := r.search(k)
		if !res.Found || string(res.Value) != v {
			t.Fatalf("key %d: %+v", k, res)
		}
	}
	// Strong persistence: the device image must already contain every pair.
	got := collectFromDevice(t, r.dev, &storage.Meta{
		Root: r.tree.rootID, Height: uint8(r.tree.Height()),
	})
	if len(got) != len(model) {
		t.Fatalf("device has %d keys, want %d", len(got), len(model))
	}
	for k, v := range model {
		if string(got[k]) != v {
			t.Fatalf("device key %d = %q, want %q", k, got[k], v)
		}
	}
}

func TestSequentialAndReverseInserts(t *testing.T) {
	for name, gen := range map[string]func(i int) uint64{
		"ascending":  func(i int) uint64 { return uint64(i) },
		"descending": func(i int) uint64 { return uint64(2000 - i) },
	} {
		t.Run(name, func(t *testing.T) {
			r := newRig(t, Config{})
			for i := 0; i < 800; i++ {
				r.insert(gen(i), "v")
			}
			if r.tree.NumKeys() != 800 {
				t.Fatalf("numKeys = %d", r.tree.NumKeys())
			}
			for i := 0; i < 800; i++ {
				if !r.search(gen(i)).Found {
					t.Fatalf("missing key %d", gen(i))
				}
			}
		})
	}
}

func TestRangeScan(t *testing.T) {
	r := newRig(t, Config{})
	for i := 0; i < 500; i++ {
		r.insert(uint64(i*2), fmt.Sprintf("v%d", i*2)) // even keys 0..998
	}
	res := r.do(NewRange(100, 120, 0, nil))
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	want := []uint64{100, 102, 104, 106, 108, 110, 112, 114, 116, 118, 120}
	if len(res.Pairs) != len(want) {
		t.Fatalf("got %d pairs, want %d", len(res.Pairs), len(want))
	}
	for i, kv := range res.Pairs {
		if kv.Key != want[i] || string(kv.Value) != fmt.Sprintf("v%d", want[i]) {
			t.Fatalf("pair %d = %+v", i, kv)
		}
	}
	// Limit.
	res = r.do(NewRange(0, 1 << 62, 7, nil))
	if len(res.Pairs) != 7 {
		t.Fatalf("limited scan returned %d", len(res.Pairs))
	}
	// Cross-leaf full scan.
	res = r.do(NewRange(0, 1<<62, 0, nil))
	if len(res.Pairs) != 500 {
		t.Fatalf("full scan returned %d", len(res.Pairs))
	}
	if !sort.SliceIsSorted(res.Pairs, func(i, j int) bool { return res.Pairs[i].Key < res.Pairs[j].Key }) {
		t.Fatal("scan out of order")
	}
	// Empty range.
	res = r.do(NewRange(101, 101, 0, nil))
	if len(res.Pairs) != 0 {
		t.Fatalf("empty range returned %d", len(res.Pairs))
	}
}

func TestValueTooLarge(t *testing.T) {
	r := newRig(t, Config{})
	res := r.do(NewInsert(1, make([]byte, storage.MaxValueSize+1), nil))
	if res.Err != ErrValueTooLarge {
		t.Fatalf("err = %v", res.Err)
	}
	// Tree still healthy.
	r.insert(1, "ok")
	if !r.search(1).Found {
		t.Fatal("tree broken after oversized insert")
	}
}

func TestMaxSizeValuesSplitCorrectly(t *testing.T) {
	r := newRig(t, Config{})
	val := bytes.Repeat([]byte{0xAB}, storage.MaxValueSize)
	for i := 0; i < 50; i++ {
		res := r.do(NewInsert(uint64(i), val, nil))
		if res.Err != nil {
			t.Fatalf("insert %d: %v", i, res.Err)
		}
	}
	for i := 0; i < 50; i++ {
		res := r.search(uint64(i))
		if !res.Found || len(res.Value) != storage.MaxValueSize {
			t.Fatalf("key %d: found=%v len=%d", i, res.Found, len(res.Value))
		}
	}
}

func TestMixedValueSizes(t *testing.T) {
	r := newRig(t, Config{})
	rng := sim.NewRNG(9)
	model := map[uint64]int{}
	for i := 0; i < 1200; i++ {
		k := rng.Uint64n(5000)
		sz := rng.Intn(storage.MaxValueSize + 1)
		res := r.do(NewInsert(k, bytes.Repeat([]byte{byte(k)}, sz), nil))
		if res.Err != nil {
			t.Fatalf("insert %d (size %d): %v", k, sz, res.Err)
		}
		model[k] = sz
	}
	for k, sz := range model {
		res := r.search(k)
		if !res.Found || len(res.Value) != sz {
			t.Fatalf("key %d: found=%v len=%d want %d", k, res.Found, len(res.Value), sz)
		}
	}
}

func TestInterleavedConcurrentOps(t *testing.T) {
	// Many ops admitted at once: exercises interleaving, latch queueing
	// and out-of-order completion.
	r := newRig(t, Config{Prioritized: true})
	var ops []*Op
	for i := 0; i < 400; i++ {
		ops = append(ops, NewInsert(uint64(i%97), []byte(fmt.Sprintf("v%d", i)), nil))
		ops = append(ops, NewSearch(uint64(i%97), nil))
	}
	r.doAll(ops)
	for _, op := range ops {
		if op.Res.Err != nil {
			t.Fatalf("op error: %v", op.Res.Err)
		}
	}
	if r.tree.NumKeys() != 97 {
		t.Fatalf("numKeys = %d", r.tree.NumKeys())
	}
	st := r.tree.StatsSnapshot()
	if st.TotalOps() != 800 {
		t.Fatalf("completed = %d", st.TotalOps())
	}
}

func TestStrongPersistenceDurableOnComplete(t *testing.T) {
	// In strong mode every acknowledged update is on the device: simulate
	// a crash by walking the raw device right after completions, with the
	// tree (and its buffer) discarded.
	r := newRig(t, Config{Persistence: StrongPersistence, BufferPages: 64})
	for i := 0; i < 300; i++ {
		r.insert(uint64(i), fmt.Sprintf("v%d", i))
	}
	meta := &storage.Meta{Root: r.tree.rootID, Height: uint8(r.tree.Height())}
	got := collectFromDevice(t, r.dev, meta)
	if len(got) != 300 {
		t.Fatalf("device has %d keys after crash, want 300", len(got))
	}
}

func TestWeakPersistenceSyncSemantics(t *testing.T) {
	r := newRig(t, Config{Persistence: WeakPersistence, BufferPages: 1024})
	for i := 0; i < 300; i++ {
		r.insert(uint64(i), fmt.Sprintf("v%d", i))
	}
	// Reads still served correctly pre-sync (from the buffer).
	if res := r.search(250); !res.Found || string(res.Value) != "v250" {
		t.Fatalf("pre-sync search: %+v", res)
	}
	// Sync, then the device image must be complete and the meta durable.
	if res := r.do(NewSync(nil)); res.Err != nil {
		t.Fatal(res.Err)
	}
	meta, err := ReadMeta(r.dev)
	if err != nil {
		t.Fatal(err)
	}
	if meta.NumKeys != 300 || meta.SyncEpoch != 1 {
		t.Fatalf("meta = %+v", meta)
	}
	got := collectFromDevice(t, r.dev, meta)
	if len(got) != 300 {
		t.Fatalf("device has %d keys after sync, want 300", len(got))
	}
	for i := 0; i < 300; i++ {
		if string(got[uint64(i)]) != fmt.Sprintf("v%d", i) {
			t.Fatalf("key %d = %q", i, got[uint64(i)])
		}
	}
}

func TestWeakPersistenceMergesWrites(t *testing.T) {
	r := newRig(t, Config{Persistence: WeakPersistence, BufferPages: 1024})
	for i := 0; i < 200; i++ {
		r.insert(1, fmt.Sprintf("v%d", i)) // same key, same page
	}
	st := r.tree.BufferStats()
	if st.WriteMerges < 150 {
		t.Fatalf("write merges = %d, want most of 200", st.WriteMerges)
	}
	dst := r.dev.Stats()
	if dst.CompletedWrites > 20 {
		t.Fatalf("device writes = %d; weak mode should have absorbed them", dst.CompletedWrites)
	}
}

func TestReopenAfterSync(t *testing.T) {
	r := newRig(t, Config{Persistence: WeakPersistence, BufferPages: 1024})
	for i := 0; i < 500; i++ {
		r.insert(uint64(i*3), fmt.Sprintf("v%d", i*3))
	}
	r.do(NewSync(nil))
	r.tree.Stop()
	r.eng.RunFor(time.Second)

	// Reopen from the device image with a fresh tree and working thread.
	meta, err := ReadMeta(r.dev)
	if err != nil {
		t.Fatal(err)
	}
	r.attach(t, Config{Persistence: WeakPersistence, BufferPages: 1024}, meta)
	for _, k := range []uint64{0, 3, 999, 1497} {
		res := r.search(k)
		if k%3 == 0 && k < 1500 {
			if !res.Found || string(res.Value) != fmt.Sprintf("v%d", k) {
				t.Fatalf("reopened key %d: %+v", k, res)
			}
		} else if res.Found {
			t.Fatalf("reopened tree has phantom key %d", k)
		}
	}
	// And it accepts new writes.
	if res := r.insert(1_000_000, "fresh"); res.Err != nil {
		t.Fatal(res.Err)
	}
	if !r.search(1_000_000).Found {
		t.Fatal("insert after reopen lost")
	}
}

func TestBufferDisabledStillCorrect(t *testing.T) {
	for _, p := range []Persistence{StrongPersistence, WeakPersistence} {
		t.Run(p.String(), func(t *testing.T) {
			r := newRig(t, Config{Persistence: p, BufferPages: 0})
			for i := 0; i < 200; i++ {
				r.insert(uint64(i), "v")
			}
			for i := 0; i < 200; i++ {
				if !r.search(uint64(i)).Found {
					t.Fatalf("missing key %d", i)
				}
			}
		})
	}
}

func TestSmallBufferEvictionPath(t *testing.T) {
	// A 4-page weak buffer forces constant dirty evictions and write-backs.
	r := newRig(t, Config{Persistence: WeakPersistence, BufferPages: 4})
	rng := sim.NewRNG(3)
	model := map[uint64]bool{}
	for i := 0; i < 800; i++ {
		k := rng.Uint64n(2000)
		r.insert(k, "v")
		model[k] = true
	}
	for k := range model {
		if !r.search(k).Found {
			t.Fatalf("missing key %d after evictions", k)
		}
	}
	if r.dev.Stats().CompletedWrites == 0 {
		t.Fatal("tiny buffer produced no write-backs")
	}
}

func TestStatsAccounting(t *testing.T) {
	r := newRig(t, Config{})
	for i := 0; i < 50; i++ {
		r.insert(uint64(i), "v")
	}
	for i := 0; i < 30; i++ {
		r.search(uint64(i))
	}
	st := r.tree.StatsSnapshot()
	if st.Completed[KindInsert] != 50 || st.Completed[KindSearch] != 30 {
		t.Fatalf("completed = %v", st.Completed)
	}
	if st.Latency.Count() != 80 {
		t.Fatalf("latency count = %d", st.Latency.Count())
	}
	if st.ReadsIssued == 0 || st.WritesIssued == 0 || st.Probes == 0 {
		t.Fatalf("io stats: %+v", st)
	}
	r.tree.ResetStats()
	if r.tree.StatsSnapshot().TotalOps() != 0 {
		t.Fatal("reset failed")
	}
}

func TestCPUChargedByCategory(t *testing.T) {
	r := newRig(t, Config{})
	for i := 0; i < 100; i++ {
		r.insert(uint64(i), "v")
	}
	cpu := r.th.CPU
	for _, c := range []metrics.CPUCategory{metrics.CatRealWork, metrics.CatSync, metrics.CatNVMe, metrics.CatSched} {
		if cpu.Get(c) == 0 {
			t.Fatalf("category %v uncharged", c)
		}
	}
}

func TestAdmitAfterStop(t *testing.T) {
	r := newRig(t, Config{})
	r.insert(1, "v")
	r.tree.Stop()
	rejected := false
	op := NewSearch(1, func(o *Op) { rejected = o.Res.Err == ErrStopped })
	r.tree.Admit(op)
	if !rejected {
		t.Fatal("op admitted after stop")
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() (uint64, time.Duration) {
		eng := sim.NewEngine()
		osched := simos.New(eng, simos.Config{})
		dev := nvme.NewSimDevice(eng, nvme.SimConfig{Seed: 21})
		meta, _ := Format(dev)
		var tree *Tree
		th := osched.Spawn("patree", func(*simos.Thread) { tree.Run() })
		tree, _ = New(dev, Config{Prioritized: true}, SimEnv{T: th}, meta)
		rng := sim.NewRNG(77)
		doneCount := 0
		eng.After(0, func() {
			for i := 0; i < 300; i++ {
				tree.Admit(NewInsert(rng.Uint64n(1000), []byte("v"), func(*Op) { doneCount++ }))
			}
		})
		for doneCount < 300 && eng.Step() {
		}
		st := tree.StatsSnapshot()
		tree.Stop()
		eng.RunFor(time.Second)
		return st.TotalOps(), st.Latency.Mean()
	}
	a1, b1 := run()
	a2, b2 := run()
	if a1 != a2 || b1 != b2 {
		t.Fatalf("nondeterministic: (%d,%v) vs (%d,%v)", a1, b1, a2, b2)
	}
}

