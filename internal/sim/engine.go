// Package sim provides a deterministic discrete-event simulation engine:
// a virtual clock, an event heap with stable tie-breaking, and a seeded
// random-number generator.
//
// Every simulated component in this repository — the NVMe device model,
// the simulated OS scheduler, the workload arrival processes — schedules
// callbacks on one Engine. The engine is strictly single-threaded: events
// run one at a time, in (time, sequence) order, so a fixed seed reproduces
// byte-identical runs.
package sim

import (
	"container/heap"
	"fmt"
	"math"
	"time"
)

// Time is a point on the virtual clock, in nanoseconds since the start of
// the simulation.
type Time int64

// Duration is a span of virtual time in nanoseconds. It converts freely
// to and from time.Duration.
type Duration = time.Duration

// Common durations, re-exported for call-site brevity.
const (
	Nanosecond  = time.Nanosecond
	Microsecond = time.Microsecond
	Millisecond = time.Millisecond
	Second      = time.Second
)

// Add returns the time d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Micros returns t expressed in microseconds.
func (t Time) Micros() float64 { return float64(t) / 1e3 }

// Seconds returns t expressed in seconds.
func (t Time) Seconds() float64 { return float64(t) / 1e9 }

func (t Time) String() string { return fmt.Sprintf("%.3fus", t.Micros()) }

// event is a scheduled callback.
type event struct {
	at  Time
	seq uint64 // insertion sequence; breaks ties deterministically
	fn  func()
	idx int // heap index; -1 when cancelled or popped
}

// EventID identifies a scheduled event so it can be cancelled.
type EventID struct{ ev *event }

// eventHeap orders events by (at, seq).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.idx = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.idx = -1
	*h = old[:n-1]
	return ev
}

// Engine is a discrete-event simulator. The zero value is not usable;
// construct with NewEngine.
type Engine struct {
	now     Time
	seq     uint64
	events  eventHeap
	stopped bool
}

// NewEngine returns an engine with the clock at zero and no pending events.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// At schedules fn to run at virtual time t. Scheduling in the past panics:
// that is always a logic error in a discrete-event model.
func (e *Engine) At(t Time, fn func()) EventID {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	e.seq++
	ev := &event{at: t, seq: e.seq, fn: fn}
	heap.Push(&e.events, ev)
	return EventID{ev}
}

// After schedules fn to run d from now. Negative d panics.
func (e *Engine) After(d Duration, fn func()) EventID {
	if d < 0 {
		panic("sim: negative delay")
	}
	return e.At(e.now.Add(d), fn)
}

// Cancel removes a pending event. Cancelling an already-fired or
// already-cancelled event is a no-op and returns false.
func (e *Engine) Cancel(id EventID) bool {
	if id.ev == nil || id.ev.idx < 0 {
		return false
	}
	heap.Remove(&e.events, id.ev.idx)
	id.ev.idx = -1
	return true
}

// Pending reports the number of scheduled events.
func (e *Engine) Pending() int { return len(e.events) }

// Step runs the next event, advancing the clock to its timestamp.
// It returns false when no events remain.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := heap.Pop(&e.events).(*event)
	e.now = ev.at
	ev.fn()
	return true
}

// Run executes events until the queue drains or Stop is called.
func (e *Engine) Run() {
	e.stopped = false
	for !e.stopped && e.Step() {
	}
}

// RunUntil executes events with timestamps <= t, then advances the clock
// to exactly t. Events scheduled after t remain pending.
func (e *Engine) RunUntil(t Time) {
	e.stopped = false
	for !e.stopped && len(e.events) > 0 && e.events[0].at <= t {
		e.Step()
	}
	if !e.stopped && e.now < t {
		e.now = t
	}
}

// RunFor executes events for d of virtual time starting from now.
func (e *Engine) RunFor(d Duration) { e.RunUntil(e.now.Add(d)) }

// Stop makes the innermost Run/RunUntil return after the current event.
func (e *Engine) Stop() { e.stopped = true }

// MaxTime is the largest representable virtual time.
const MaxTime = Time(math.MaxInt64)
