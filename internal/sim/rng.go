package sim

import "math"

// RNG is a small, fast, seedable pseudo-random generator
// (xoshiro256** by Blackman & Vigna). Every source of randomness in the
// simulation draws from an RNG seeded by the experiment configuration so
// runs are reproducible. We do not use math/rand's global state anywhere.
type RNG struct {
	s [4]uint64
}

// NewRNG returns a generator seeded from seed via SplitMix64, which
// guarantees a well-mixed nonzero state for any seed including 0.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	next := func() uint64 {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for i := range r.s {
		r.s[i] = next()
	}
	return r
}

// Split derives an independent generator; useful for giving each simulated
// component its own stream without cross-coupling draw order.
func (r *RNG) Split() *RNG { return NewRNG(r.Uint64()) }

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	res := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return res
}

// Intn returns a uniform int in [0, n). n must be positive.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniform uint64 in [0, n) using Lemire's multiply-shift
// rejection method. n must be nonzero.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("sim: Uint64n with zero n")
	}
	for {
		v := r.Uint64()
		hi, lo := mul128(v, n)
		if lo >= n || lo >= -n%n {
			return hi
		}
	}
}

// mul128 returns the 128-bit product of a and b as (hi, lo).
func mul128(a, b uint64) (hi, lo uint64) {
	const mask = 1<<32 - 1
	a0, a1 := a&mask, a>>32
	b0, b1 := b&mask, b>>32
	w0 := a0 * b0
	t := a1*b0 + w0>>32
	w1 := t & mask
	w2 := t >> 32
	w1 += a0 * b1
	hi = a1*b1 + w2 + w1>>32
	lo = a * b
	return
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Exp returns an exponentially distributed duration with the given mean,
// used for Poisson arrival processes in open-loop experiments.
func (r *RNG) Exp(mean Duration) Duration {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return Duration(-math.Log(u) * float64(mean))
}

// Norm returns a normally distributed value with the given mean and
// standard deviation (Box–Muller).
func (r *RNG) Norm(mean, stddev float64) float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	return mean + stddev*math.Sqrt(-2*math.Log(u1))*math.Cos(2*math.Pi*u2)
}

// FillBytes fills b with random bytes.
func (r *RNG) FillBytes(b []byte) {
	i := 0
	for ; i+8 <= len(b); i += 8 {
		v := r.Uint64()
		for j := 0; j < 8; j++ {
			b[i+j] = byte(v >> (8 * j))
		}
	}
	if i < len(b) {
		v := r.Uint64()
		for ; i < len(b); i++ {
			b[i] = byte(v)
			v >>= 8
		}
	}
}

// Perm returns a random permutation of [0, n) (Fisher–Yates).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle pseudo-randomly reorders the first n elements using swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
