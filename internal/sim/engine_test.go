package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var got []int
	e.At(30, func() { got = append(got, 3) })
	e.At(10, func() { got = append(got, 1) })
	e.At(20, func() { got = append(got, 2) })
	e.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != 30 {
		t.Fatalf("Now = %v, want 30", e.Now())
	}
}

func TestEngineTieBreakBySequence(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(100, func() { got = append(got, i) })
	}
	e.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-time events ran out of insertion order: %v", got)
		}
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	var fired []Time
	e.At(5, func() {
		fired = append(fired, e.Now())
		e.After(7, func() { fired = append(fired, e.Now()) })
	})
	e.Run()
	if len(fired) != 2 || fired[0] != 5 || fired[1] != 12 {
		t.Fatalf("fired = %v, want [5 12]", fired)
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine()
	ran := false
	id := e.At(10, func() { ran = true })
	if !e.Cancel(id) {
		t.Fatal("Cancel returned false for pending event")
	}
	if e.Cancel(id) {
		t.Fatal("second Cancel returned true")
	}
	e.Run()
	if ran {
		t.Fatal("cancelled event ran")
	}
}

func TestEngineCancelMiddleOfHeap(t *testing.T) {
	e := NewEngine()
	var got []int
	var ids []EventID
	for i := 0; i < 20; i++ {
		i := i
		ids = append(ids, e.At(Time(i*10), func() { got = append(got, i) }))
	}
	// Cancel every third event.
	for i := 0; i < 20; i += 3 {
		e.Cancel(ids[i])
	}
	e.Run()
	for _, v := range got {
		if v%3 == 0 {
			t.Fatalf("cancelled event %d ran", v)
		}
	}
	if len(got) != 13 {
		t.Fatalf("got %d events, want 13", len(got))
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	var got []int
	e.At(10, func() { got = append(got, 1) })
	e.At(20, func() { got = append(got, 2) })
	e.At(30, func() { got = append(got, 3) })
	e.RunUntil(20)
	if len(got) != 2 {
		t.Fatalf("RunUntil(20) ran %d events, want 2", len(got))
	}
	if e.Now() != 20 {
		t.Fatalf("Now = %v, want 20", e.Now())
	}
	e.RunUntil(25)
	if e.Now() != 25 {
		t.Fatalf("Now after empty RunUntil = %v, want 25", e.Now())
	}
	if e.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", e.Pending())
	}
}

func TestEngineRunFor(t *testing.T) {
	e := NewEngine()
	n := 0
	var tick func()
	tick = func() {
		n++
		e.After(100*Nanosecond, tick)
	}
	e.After(100*Nanosecond, tick)
	e.RunFor(1 * time.Microsecond)
	if n != 10 {
		t.Fatalf("ticks = %d, want 10", n)
	}
}

func TestEngineStop(t *testing.T) {
	e := NewEngine()
	n := 0
	e.At(1, func() { n++; e.Stop() })
	e.At(2, func() { n++ })
	e.Run()
	if n != 1 {
		t.Fatalf("events run = %d, want 1", n)
	}
	// Run again resumes.
	e.Run()
	if n != 2 {
		t.Fatalf("events run after resume = %d, want 2", n)
	}
}

func TestEnginePastSchedulingPanics(t *testing.T) {
	e := NewEngine()
	e.At(100, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	e.At(50, func() {})
}

func TestTimeArithmetic(t *testing.T) {
	tm := Time(1500)
	if tm.Add(500 * Nanosecond) != 2000 {
		t.Fatal("Add wrong")
	}
	if tm.Sub(Time(500)) != 1000*Nanosecond {
		t.Fatal("Sub wrong")
	}
	if Time(2500).Micros() != 2.5 {
		t.Fatal("Micros wrong")
	}
	if Time(2e9).Seconds() != 2.0 {
		t.Fatal("Seconds wrong")
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRNG(43)
	same := true
	a2 := NewRNG(42)
	for i := 0; i < 10; i++ {
		if a2.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestRNGIntnBounds(t *testing.T) {
	r := NewRNG(7)
	counts := make([]int, 10)
	for i := 0; i < 100000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) = %d out of range", v)
		}
		counts[v]++
	}
	// Roughly uniform: each bucket within 20% of expectation.
	for i, c := range counts {
		if c < 8000 || c > 12000 {
			t.Fatalf("bucket %d count %d far from uniform", i, c)
		}
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(99)
	for i := 0; i < 100000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
	}
}

func TestRNGExpMean(t *testing.T) {
	r := NewRNG(1)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += float64(r.Exp(100 * Microsecond))
	}
	mean := sum / n
	want := float64(100 * Microsecond)
	if mean < 0.97*want || mean > 1.03*want {
		t.Fatalf("exp mean = %v, want ~%v", mean, want)
	}
}

func TestRNGNormMoments(t *testing.T) {
	r := NewRNG(5)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.Norm(10, 2)
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if mean < 9.95 || mean > 10.05 {
		t.Fatalf("norm mean = %v, want ~10", mean)
	}
	if variance < 3.8 || variance > 4.2 {
		t.Fatalf("norm variance = %v, want ~4", variance)
	}
}

func TestRNGPerm(t *testing.T) {
	r := NewRNG(3)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("Perm not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestRNGUint64nProperty(t *testing.T) {
	f := func(seed uint64, n uint64) bool {
		if n == 0 {
			n = 1
		}
		r := NewRNG(seed)
		for i := 0; i < 50; i++ {
			if r.Uint64n(n) >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMul128(t *testing.T) {
	cases := []struct{ a, b, hi, lo uint64 }{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{1 << 32, 1 << 32, 1, 0},
		{^uint64(0), ^uint64(0), ^uint64(0) - 1, 1},
		{0xdeadbeef, 0x10000000000, 0xde, 0xadbeef0000000000},
	}
	for _, c := range cases {
		hi, lo := mul128(c.a, c.b)
		if hi != c.hi || lo != c.lo {
			t.Fatalf("mul128(%#x,%#x) = (%#x,%#x), want (%#x,%#x)", c.a, c.b, hi, lo, c.hi, c.lo)
		}
	}
}
