package patree

import (
	"fmt"
	"sync"
	"testing"

	"github.com/patree/patree/internal/nvme"
)

func TestOpenPutGetClose(t *testing.T) {
	db, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Put(42, []byte("answer")); err != nil {
		t.Fatal(err)
	}
	v, ok, err := db.Get(42)
	if err != nil || !ok || string(v) != "answer" {
		t.Fatalf("get: %q %v %v", v, ok, err)
	}
	if _, ok, _ := db.Get(43); ok {
		t.Fatal("phantom key")
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal("double close errored:", err)
	}
	if err := db.Put(1, []byte("x")); err != ErrClosed {
		t.Fatalf("put after close: %v", err)
	}
}

func TestCRUDAndScan(t *testing.T) {
	db, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for i := uint64(0); i < 500; i++ {
		if err := db.Put(i*2, []byte(fmt.Sprintf("v%d", i*2))); err != nil {
			t.Fatal(err)
		}
	}
	if ok, _ := db.Update(10, []byte("new")); !ok {
		t.Fatal("update failed")
	}
	if ok, _ := db.Update(11, []byte("x")); ok {
		t.Fatal("update of absent key")
	}
	if ok, _ := db.Delete(20); !ok {
		t.Fatal("delete failed")
	}
	pairs, err := db.Scan(8, 30, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := []uint64{8, 10, 12, 14, 16, 18, 22, 24, 26, 28, 30}
	if len(pairs) != len(want) {
		t.Fatalf("scan: %d pairs", len(pairs))
	}
	for i, kv := range pairs {
		if kv.Key != want[i] {
			t.Fatalf("scan[%d] = %d, want %d", i, kv.Key, want[i])
		}
	}
	if string(pairs[1].Value) != "new" {
		t.Fatalf("updated value = %q", pairs[1].Value)
	}
	st := db.Stats()
	if st.NumKeys != 499 || st.Ops == 0 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestConcurrentClients(t *testing.T) {
	db, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	const goroutines = 8
	const per = 200
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				k := uint64(g*100000 + i)
				if err := db.Put(k, []byte("v")); err != nil {
					errs <- err
					return
				}
				if _, ok, err := db.Get(k); !ok || err != nil {
					errs <- fmt.Errorf("readback %d: %v %v", k, ok, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := db.Stats().NumKeys; got != goroutines*per {
		t.Fatalf("numKeys = %d", got)
	}
}

func TestPersistenceAcrossReopen(t *testing.T) {
	dev := nvme.NewRAMDevice(nvme.RAMConfig{})
	defer dev.Close()
	db, err := Open(Options{Device: dev, Persistence: Weak})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 300; i++ {
		db.Put(i, []byte(fmt.Sprintf("v%d", i)))
	}
	if err := db.Close(); err != nil { // Close syncs
		t.Fatal(err)
	}
	db2, err := Open(Options{Device: dev})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	for _, k := range []uint64{0, 150, 299} {
		v, ok, err := db2.Get(k)
		if err != nil || !ok || string(v) != fmt.Sprintf("v%d", k) {
			t.Fatalf("reopened key %d: %q %v %v", k, v, ok, err)
		}
	}
	if _, ok, _ := db2.Get(300); ok {
		t.Fatal("phantom key after reopen")
	}
}

func TestFormatWipes(t *testing.T) {
	dev := nvme.NewRAMDevice(nvme.RAMConfig{})
	defer dev.Close()
	db, _ := Open(Options{Device: dev})
	db.Put(1, []byte("x"))
	db.Close()
	db2, err := Open(Options{Device: dev, Format: true})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if _, ok, _ := db2.Get(1); ok {
		t.Fatal("format did not wipe")
	}
}

func TestValueTooLarge(t *testing.T) {
	db, _ := Open(Options{})
	defer db.Close()
	if err := db.Put(1, make([]byte, MaxValueSize+1)); err == nil {
		t.Fatal("oversized put accepted")
	}
	if err := db.Put(1, make([]byte, MaxValueSize)); err != nil {
		t.Fatal(err)
	}
}
