package patree

import "github.com/patree/patree/internal/core"

// This file is the single home of the scatter-gather result merge used
// by every multi-shard read path — Scan/ScanAsync fan-outs (async.go),
// batch scans (batch.go), and the optimistic concurrent-read scan
// (read_path.go). The k-way selection itself is core.MergeRuns, shared
// with the LSM baseline's merges.

// mergeScan merge-sorts per-shard scan results (each already ascending,
// keyspaces disjoint) into one ascending run, honoring the global limit
// (<= 0 = unlimited). The first shard error wins and discards the data.
func mergeScan(rs []core.Result, limit int) core.Result {
	out := mergeFirstErr(rs)
	if out.Err != nil {
		return out
	}
	total := 0
	for _, r := range rs {
		total += len(r.Pairs)
	}
	if limit > 0 && total > limit {
		total = limit
	}
	if total == 0 {
		return out
	}
	pairs := make([]KV, 0, total)
	core.MergeRuns(len(rs),
		func(i int) int { return len(rs[i].Pairs) },
		func(i, j int) uint64 { return rs[i].Pairs[j].Key },
		false,
		func(i, j int) bool {
			pairs = append(pairs, rs[i].Pairs[j])
			return len(pairs) < total
		})
	out.Pairs = pairs
	return out
}

// mergeFirstErr folds per-shard results into one carrying the first
// (lowest shard index) error and the widest admitted→completed window,
// so the merged latency covers the whole scattered operation.
func mergeFirstErr(rs []core.Result) core.Result {
	var out core.Result
	for i, r := range rs {
		if r.Err != nil && out.Err == nil {
			out.Err = r.Err
		}
		if i == 0 || r.Admitted < out.Admitted {
			out.Admitted = r.Admitted
		}
		if r.Completed > out.Completed {
			out.Completed = r.Completed
		}
	}
	return out
}
